//! Shape utilities for row-major dense tensors of rank 0–3.

use std::fmt;
use std::ops::Deref;

/// Maximum tensor rank representable by [`Shape`] (one above the rank-3
/// tensors the library produces, as headroom).
pub const MAX_RANK: usize = 4;

/// A tensor shape stored inline on the stack.
///
/// Tensors in this library are rank 0–3, so a shape is at most a few
/// `usize`s — heap-allocating a `Vec<usize>` for every tensor (and for every
/// `Var::shape()` query in the forward pass) was pure allocator traffic.
/// `Shape` is `Copy`, derefs to `&[usize]`, and compares against slices and
/// `Vec<usize>` so existing call sites keep working unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// A rank-0 (scalar) shape.
    pub const fn scalar() -> Self {
        Self { dims: [0; MAX_RANK], rank: 0 }
    }

    /// Builds a shape from a slice. Panics above [`MAX_RANK`].
    pub fn from_slice(dims: &[usize]) -> Self {
        assert!(dims.len() <= MAX_RANK, "rank {} exceeds MAX_RANK {MAX_RANK}", dims.len());
        let mut out = Self::scalar();
        out.dims[..dims.len()].copy_from_slice(dims);
        out.rank = dims.len() as u8;
        out
    }

    /// The dimensions as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Number of elements implied by this shape (scalar = 1).
    #[inline]
    pub fn numel(&self) -> usize {
        numel(self.as_slice())
    }

    /// The dimensions as a freshly allocated `Vec` (compatibility helper).
    pub fn to_vec(&self) -> Vec<usize> {
        self.as_slice().to_vec()
    }

    /// Copy with the final dimension replaced; a rank-0 shape becomes `[d]`.
    pub fn with_last(mut self, d: usize) -> Shape {
        if self.rank == 0 {
            self.dims[0] = d;
            self.rank = 1;
        } else {
            self.dims[self.rank as usize - 1] = d;
        }
        self
    }

    /// Copy with the last two dimensions swapped. Panics for rank < 2.
    pub fn swapped_last2(mut self) -> Shape {
        let r = self.rank as usize;
        assert!(r >= 2, "swapped_last2 needs rank >= 2, got {self:?}");
        self.dims.swap(r - 2, r - 1);
        self
    }
}

impl Deref for Shape {
    type Target = [usize];

    #[inline]
    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self::from_slice(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self::from_slice(&dims)
    }
}

impl From<&Vec<usize>> for Shape {
    fn from(dims: &Vec<usize>) -> Self {
        Self::from_slice(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Self::from_slice(&dims)
    }
}

impl PartialEq<[usize]> for Shape {
    fn eq(&self, other: &[usize]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[usize]> for Shape {
    fn eq(&self, other: &&[usize]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[usize; N]> for Shape {
    fn eq(&self, other: &[usize; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[usize; N]> for Shape {
    fn eq(&self, other: &&[usize; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<usize>> for Shape {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// `true` if two shapes are identical.
#[inline]
pub fn same(a: &[usize], b: &[usize]) -> bool {
    a == b
}

/// Splits a shape into `(leading, last)` where `leading` is the product of all
/// dimensions except the last. A rank-0 or rank-1 tensor has `leading == 1`.
#[inline]
pub fn rows_cols(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        _ => {
            let last = shape[shape.len() - 1];
            (numel(shape) / last.max(1), last)
        }
    }
}

/// Shape of the result of swapping the last two axes. Panics for rank < 2.
pub fn transpose_last2(shape: &[usize]) -> Vec<usize> {
    assert!(shape.len() >= 2, "transpose_last2 needs rank >= 2, got {shape:?}");
    let mut out = shape.to_vec();
    let n = out.len();
    out.swap(n - 2, n - 1);
    out
}

/// For a batched matmul `(b, m, k) x (b, k, n)` returns `(b, m, k, n)`.
/// Also accepts the unbatched 2-D x 2-D case, reporting `b == 1`.
pub fn batch_matmul_dims(a: &[usize], b: &[usize]) -> (usize, usize, usize, usize) {
    match (a.len(), b.len()) {
        (2, 2) => {
            assert_eq!(a[1], b[0], "matmul inner-dim mismatch: {a:?} x {b:?}");
            (1, a[0], a[1], b[1])
        }
        (3, 3) => {
            assert_eq!(a[0], b[0], "batched matmul batch mismatch: {a:?} x {b:?}");
            assert_eq!(a[2], b[1], "batched matmul inner-dim mismatch: {a:?} x {b:?}");
            (a[0], a[1], a[2], b[2])
        }
        (3, 2) => {
            assert_eq!(a[2], b[0], "matmul inner-dim mismatch: {a:?} x {b:?}");
            (a[0], a[1], a[2], b[1])
        }
        _ => panic!("unsupported matmul ranks: {a:?} x {b:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn shape_roundtrip_and_eq() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s, vec![2, 3, 4]);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s[1], 3);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(Shape::from(s.to_vec()), s);
        let scalar = Shape::scalar();
        assert_eq!(scalar.rank(), 0);
        assert_eq!(scalar.numel(), 1);
        assert!(scalar.as_slice().is_empty());
    }

    #[test]
    #[should_panic]
    fn shape_rank_overflow_panics() {
        Shape::from_slice(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[3]), 3);
        assert_eq!(numel(&[2, 3]), 6);
        assert_eq!(numel(&[2, 3, 4]), 24);
    }

    #[test]
    fn rows_cols_splits() {
        assert_eq!(rows_cols(&[5, 7]), (5, 7));
        assert_eq!(rows_cols(&[2, 5, 7]), (10, 7));
        assert_eq!(rows_cols(&[7]), (1, 7));
        assert_eq!(rows_cols(&[]), (1, 1));
    }

    #[test]
    fn transpose_shape() {
        assert_eq!(transpose_last2(&[2, 3]), vec![3, 2]);
        assert_eq!(transpose_last2(&[4, 2, 3]), vec![4, 3, 2]);
    }

    #[test]
    #[should_panic]
    fn transpose_rank1_panics() {
        transpose_last2(&[3]);
    }

    #[test]
    fn matmul_dims() {
        assert_eq!(batch_matmul_dims(&[2, 3], &[3, 5]), (1, 2, 3, 5));
        assert_eq!(batch_matmul_dims(&[4, 2, 3], &[4, 3, 5]), (4, 2, 3, 5));
        assert_eq!(batch_matmul_dims(&[4, 2, 3], &[3, 5]), (4, 2, 3, 5));
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        batch_matmul_dims(&[2, 3], &[4, 5]);
    }
}
