//! Raw numeric kernels shared by forward and backward passes.
//!
//! All kernels operate on contiguous row-major buffers.
//!
//! ## Micro-kernel tiling
//!
//! The matmul family runs register-blocked micro-kernels: output tiles of
//! [`MR`] rows × [`NR`] columns are loaded into stack arrays the compiler
//! keeps in SIMD registers, the full k-extent is accumulated into them, and
//! they are stored back once — so the innermost loop touches no `c` memory
//! and reuses each loaded `b` row across `MR` output rows. The transposed
//! backward matmuls additionally pack their strided operand into a
//! contiguous arena-backed panel (`AᵀB` packs `MR` columns of `a`, `A·Bᵀ`
//! packs [`BT_NR`] rows of `b` column-interleaved) so the inner loops stream
//! unit-stride. The seed's i-k-j loops are kept as `matmul_*_naive`
//! references for the equivalence tests and benchmarks. The largest win is
//! `A·Bᵀ` (the dx backward): its naive form is one sequential dot-product
//! chain per element, which cannot vectorize along k without reassociating,
//! while the tile runs `MR`×`BT_NR` independent chains.
//!
//! **Accumulation-order invariant:** every tiled kernel performs, per output
//! element, exactly the floating-point operations of the naive loop in
//! exactly the same order — k ascending, separate mul and add (Rust never
//! contracts to FMA), and the same skip of `a`-operands that equal `0.0`
//! (adding `+0.0` is *not* a bitwise no-op: it flips a `-0.0` accumulator).
//! Tiling only changes *which registers* hold the partial sums, never the
//! arithmetic, so naive, tiled, and pool-chunked results are bit-identical.
//!
//! The zero-skip makes the inner loop branchy, which costs real throughput
//! when `a` is dense; the skipping kernels therefore hoist one "does this
//! `MR`-row panel of `a` contain any exact zero?" scan out of the tile loop
//! (cost `1/(2n)` of the panel's flops) and run a fully branchless tile when
//! it doesn't. Skipping only ever fires on zero operands, so taking the
//! branchless path on a zero-free panel is arithmetic-identical, not just
//! bit-identical by accident.
//!
//! ## Data parallelism
//!
//! Kernels above the `PAR_*` size cutoffs fan out over the
//! [`bootleg_pool`] execution layer by splitting their *output* rows (or
//! batch slabs) into disjoint chunks; below the cutoffs they run the plain
//! serial loop. Every chunk computes exactly the elements the serial loop
//! would, with the same per-element floating-point accumulation order, so
//! results are **bit-identical at any thread count** — parallelism here is
//! purely a scheduling choice, never a numeric one.
//!
//! ## Observability
//!
//! Each public kernel counts its calls, work volume (`kernel.matmul.flops`,
//! `kernel.*.rows`), and which path it chose (`.par` when it fanned out to
//! the pool, `.serial` otherwise) through `bootleg-obs`. A counted `.par`
//! call can still *execute* serially inside the pool (nested fork-join);
//! `pool.serial_fallback` accounts for those.

use bootleg_obs::counter;

/// Micro-kernel row blocking: output rows processed per register tile.
pub const MR: usize = 4;
/// Micro-kernel column blocking: output columns per register tile. With
/// baseline SSE2 (16 × 128-bit registers) an `MR`×`NR` f32 tile occupies 8
/// registers, leaving room for the `b` tile and the broadcast `a` operand.
pub const NR: usize = 8;

/// Minimum multiply-accumulate count before a matmul fans out to the pool.
pub const PAR_MATMUL_FLOPS: usize = 64 * 1024;
/// Target multiply-accumulate count per parallel matmul chunk. Sized so a
/// chunk outlives the pool's enqueue/steal overhead by a comfortable margin:
/// the tiled micro-kernel retires elements several times faster than the old
/// naive loop did, so chunks carry 4× the flops they did when this constant
/// was introduced (16 KiFLOP chunks left workers idling on the queue).
const PAR_MATMUL_CHUNK_FLOPS: usize = 64 * 1024;
/// Minimum element count before row-wise kernels (softmax, layer norm,
/// gather) fan out to the pool.
pub const PAR_ROWS_MIN_ELEMS: usize = 16 * 1024;
/// Target element count per parallel row chunk.
const PAR_ROW_CHUNK_ELEMS: usize = 8 * 1024;

/// Rows per chunk that lands roughly `target` scalar ops per chunk when each
/// row costs `row_work`.
fn rows_per_chunk(target: usize, row_work: usize) -> usize {
    (target / row_work.max(1)).max(1)
}

/// Counts one matmul-family call: `macs` multiply-accumulates → 2·macs FLOPs.
#[inline]
fn obs_matmul(macs: usize, par: bool) {
    counter!("kernel.matmul.calls").inc();
    counter!("kernel.matmul.flops").add(2 * macs as u64);
    if par {
        counter!("kernel.matmul.par").inc();
    } else {
        counter!("kernel.matmul.serial").inc();
    }
}

/// Counts one gather call over `rows` output rows.
#[inline]
fn obs_gather(rows: usize, par: bool) {
    counter!("kernel.gather.calls").inc();
    counter!("kernel.gather.rows").add(rows as u64);
    if par {
        counter!("kernel.gather.par").inc();
    } else {
        counter!("kernel.gather.serial").inc();
    }
}

/// Counts one softmax / log-softmax call over `rows` rows.
#[inline]
fn obs_softmax(rows: usize, par: bool) {
    counter!("kernel.softmax.calls").inc();
    counter!("kernel.softmax.rows").add(rows as u64);
    if par {
        counter!("kernel.softmax.par").inc();
    } else {
        counter!("kernel.softmax.serial").inc();
    }
}

/// Counts one layer-norm call over `rows` rows.
#[inline]
fn obs_layer_norm(rows: usize, par: bool) {
    counter!("kernel.layer_norm.calls").inc();
    counter!("kernel.layer_norm.rows").add(rows as u64);
    if par {
        counter!("kernel.layer_norm.par").inc();
    } else {
        counter!("kernel.layer_norm.serial").inc();
    }
}

/// `c += a (m×k) * b (k×n)`; `c` is m×n and must be pre-zeroed by the caller
/// if plain assignment is wanted.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let par = m >= 2 && m * k * n >= PAR_MATMUL_FLOPS;
    obs_matmul(m * k * n, par);
    if par {
        // Round chunks to whole MR row-blocks so only the final chunk can
        // hit the micro-kernel's row-tail path.
        let rows_per = rows_per_chunk(PAR_MATMUL_CHUNK_FLOPS, k * n).next_multiple_of(MR);
        bootleg_pool::parallel_chunks_mut(c, rows_per * n, |ci, cc| {
            let r0 = ci * rows_per;
            let rows = cc.len() / n;
            matmul_acc_tiled(&a[r0 * k..(r0 + rows) * k], b, cc, rows, k, n);
        });
    } else {
        matmul_acc_tiled(a, b, c, m, k, n);
    }
}

/// Reference i-k-j scalar loop for `c += a·b`. Bit-identical to
/// [`matmul_acc_tiled`]; kept for the equivalence property tests and the
/// `kernel_gflops_naive` baseline benchmark.
pub fn matmul_acc_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Register-blocked `c += a (m×k) · b (k×n)`.
///
/// Full [`MR`]×[`NR`] output tiles are accumulated in stack registers; the
/// k-loop broadcasts one `a` element per row against an `NR`-wide `b` slice,
/// so each `b` load is reused `MR` times and `c` is touched once per tile.
/// A hoisted per-panel zero scan picks a branchless tile when the `MR`×k
/// panel of `a` is zero-free and falls back to the per-row skipping naive
/// loop when it isn't. Per-element arithmetic (k order, mul/add split,
/// zero-skip) is exactly the naive loop's — see the module docs on the
/// accumulation-order invariant.
pub fn matmul_acc_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + MR <= m {
        if a[i * k..(i + MR) * k].contains(&0.0) {
            // Zero-skips would fire inside the tile; the naive loop pays one
            // branch per (row, p) amortized over the whole n-wide row instead
            // of one per tile column block.
            matmul_acc_naive(&a[i * k..(i + MR) * k], b, &mut c[i * n..(i + MR) * n], MR, k, n);
            i += MR;
            continue;
        }
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let row = (i + r) * n + j;
                accr.copy_from_slice(&c[row..row + NR]);
            }
            for p in 0..k {
                let bp = <&[f32; NR]>::try_from(&b[p * n + j..p * n + j + NR]).unwrap();
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * k + p];
                    for (cv, &bv) in accr.iter_mut().zip(bp.iter()) {
                        *cv += av * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let row = (i + r) * n + j;
                c[row..row + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        if j < n {
            // Column tail: same register tile at reduced width.
            let w = n - j;
            let mut acc = [[0.0f32; NR]; MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                let row = (i + r) * n + j;
                accr[..w].copy_from_slice(&c[row..row + w]);
            }
            for p in 0..k {
                let bp = &b[p * n + j..p * n + n];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * k + p];
                    for (cv, &bv) in accr[..w].iter_mut().zip(bp.iter()) {
                        *cv += av * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let row = (i + r) * n + j;
                c[row..row + w].copy_from_slice(&accr[..w]);
            }
        }
        i += MR;
    }
    if i < m {
        // Row tail (< MR rows): the naive loop is already per-row.
        matmul_acc_naive(&a[i * k..m * k], b, &mut c[i * n..m * n], m - i, k, n);
    }
}

/// `(B, M, K) × (B, K, N)` batched matmul into a pre-zeroed `c` (B, M, N),
/// parallel over the batch axis above the flop cutoff.
pub fn batch_matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], bb: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bb * m * k);
    debug_assert_eq!(b.len(), bb * k * n);
    debug_assert_eq!(c.len(), bb * m * n);
    let slab = m * n;
    let par = bb >= 2 && bb * m * k * n >= PAR_MATMUL_FLOPS;
    obs_matmul(bb * m * k * n, par);
    if par {
        bootleg_pool::parallel_chunks_mut(c, slab, |t, cc| {
            matmul_acc_tiled(
                &a[t * m * k..(t + 1) * m * k],
                &b[t * k * n..(t + 1) * k * n],
                cc,
                m,
                k,
                n,
            );
        });
    } else {
        for t in 0..bb {
            matmul_acc_tiled(
                &a[t * m * k..(t + 1) * m * k],
                &b[t * k * n..(t + 1) * k * n],
                &mut c[t * slab..(t + 1) * slab],
                m,
                k,
                n,
            );
        }
    }
}

/// `c += aᵀ (k×m, stored m×k) * b (m×n)`; result is k×n.
/// Used for weight gradients: dW = xᵀ dy.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    let par = k >= 2 && m * k * n >= PAR_MATMUL_FLOPS;
    obs_matmul(m * k * n, par);
    if par {
        // Split the k output rows; each chunk walks i in the same ascending
        // order as the serial loop, so per-element accumulation order (and
        // thus every bit of the result) is unchanged.
        let rows_per = rows_per_chunk(PAR_MATMUL_CHUNK_FLOPS, m * n).next_multiple_of(MR);
        bootleg_pool::parallel_chunks_mut(c, rows_per * n, |ci, cc| {
            matmul_at_b_panel(a, b, cc, m, k, n, ci * rows_per);
        });
    } else {
        matmul_at_b_panel(a, b, c, m, k, n, 0);
    }
}

/// Reference loop for `c += aᵀ·b`. Bit-identical to [`matmul_at_b_panel`].
pub fn matmul_at_b_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let brow = &b[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Packed-panel micro-kernel for `cpanel += (aᵀ·b)[p0.., ..]` where `cpanel`
/// holds `cpanel.len() / n` consecutive output rows starting at row `p0`.
///
/// The operand `aᵀ` is column-strided in memory (element `(p, i)` lives at
/// `a[i*k + p]`), so the panel first packs the `MR` active `a` columns into a
/// contiguous arena-backed buffer (`packed[i*MR + r]`); the k-loop then
/// streams unit-stride through both operands. Serves both the serial path
/// (`p0 == 0`, whole output) and the pool's row-chunk closures, which is what
/// keeps the chunked result bit-identical to the serial one: per element the
/// i-ascending zero-skipping accumulation of [`matmul_at_b_naive`] is
/// replayed exactly, only from registers instead of memory.
pub fn matmul_at_b_panel(
    a: &[f32],
    b: &[f32],
    cpanel: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    p0: usize,
) {
    debug_assert_eq!(cpanel.len() % n.max(1), 0);
    let prows = cpanel.len() / n.max(1);
    debug_assert!(p0 + prows <= k);
    let mut packed = crate::arena::take(m * MR);
    let mut r = 0;
    while r < prows {
        let mr = MR.min(prows - r);
        for i in 0..m {
            let base = i * k + p0 + r;
            for q in 0..mr {
                packed[i * mr + q] = a[base + q];
            }
        }
        if packed[..m * mr].contains(&0.0) {
            // Zero-skips would fire: run the skipping saxpy over the whole
            // block instead (one branch per (i, q), amortized over n).
            for i in 0..m {
                let brow = &b[i * n..(i + 1) * n];
                for q in 0..mr {
                    let av = packed[i * mr + q];
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut cpanel[(r + q) * n..(r + q + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                }
            }
            r += mr;
            continue;
        }
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for (q, accq) in acc.iter_mut().enumerate().take(mr) {
                let row = (r + q) * n + j;
                accq.copy_from_slice(&cpanel[row..row + NR]);
            }
            if mr == MR {
                for i in 0..m {
                    let ap = <&[f32; MR]>::try_from(&packed[i * MR..i * MR + MR]).unwrap();
                    let bp = <&[f32; NR]>::try_from(&b[i * n + j..i * n + j + NR]).unwrap();
                    for (q, accq) in acc.iter_mut().enumerate() {
                        let av = ap[q];
                        for (cv, &bv) in accq.iter_mut().zip(bp.iter()) {
                            *cv += av * bv;
                        }
                    }
                }
            } else {
                for i in 0..m {
                    let bp = <&[f32; NR]>::try_from(&b[i * n + j..i * n + j + NR]).unwrap();
                    for (q, accq) in acc.iter_mut().enumerate().take(mr) {
                        let av = packed[i * mr + q];
                        for (cv, &bv) in accq.iter_mut().zip(bp.iter()) {
                            *cv += av * bv;
                        }
                    }
                }
            }
            for (q, accq) in acc.iter().enumerate().take(mr) {
                let row = (r + q) * n + j;
                cpanel[row..row + NR].copy_from_slice(accq);
            }
            j += NR;
        }
        if j < n {
            let w = n - j;
            let mut acc = [[0.0f32; NR]; MR];
            for (q, accq) in acc.iter_mut().enumerate().take(mr) {
                let row = (r + q) * n + j;
                accq[..w].copy_from_slice(&cpanel[row..row + w]);
            }
            for i in 0..m {
                let bp = &b[i * n + j..i * n + n];
                for (q, accq) in acc.iter_mut().enumerate().take(mr) {
                    let av = packed[i * mr + q];
                    for (cv, &bv) in accq[..w].iter_mut().zip(bp.iter()) {
                        *cv += av * bv;
                    }
                }
            }
            for (q, accq) in acc.iter().enumerate().take(mr) {
                let row = (r + q) * n + j;
                cpanel[row..row + w].copy_from_slice(&accq[..w]);
            }
        }
        r += mr;
    }
    crate::arena::release(packed);
}

/// `c += a (m×k) * bᵀ (n×k, stored n×k)`; result is m×n.
/// Used for input gradients: dx = dy Wᵀ.
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let par = m >= 2 && m * k * n >= PAR_MATMUL_FLOPS;
    obs_matmul(m * k * n, par);
    if par {
        let rows_per = rows_per_chunk(PAR_MATMUL_CHUNK_FLOPS, k * n).next_multiple_of(MR);
        bootleg_pool::parallel_chunks_mut(c, rows_per * n, |ci, cc| {
            let r0 = ci * rows_per;
            let rows = cc.len() / n;
            matmul_a_bt_tiled(&a[r0 * k..(r0 + rows) * k], b, cc, rows, k, n);
        });
    } else {
        matmul_a_bt_tiled(a, b, c, m, k, n);
    }
}

/// Reference loop for `c += a·bᵀ`. Bit-identical to [`matmul_a_bt_tiled`].
pub fn matmul_a_bt_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                s += av * bv;
            }
            *cv += s;
        }
    }
}

/// Number of `b` rows (output columns) per `A·Bᵀ` register tile.
pub const BT_NR: usize = 8;

/// Register-blocked `c += a (m×k) · bᵀ (b stored n×k)`.
///
/// The naive loop is one sequential dot-product chain per output element —
/// k-ascending adds with a loop-carried dependency that cannot vectorize
/// without reassociating. The tile keeps [`MR`]×[`BT_NR`] independent
/// accumulator chains in registers instead, and first packs the [`BT_NR`]
/// active `b` rows column-interleaved into an arena-backed panel
/// (`packed[p*BT_NR + q] = b[(j+q)*k + p]`, cost `1/(2m)` of the block's
/// flops) so the k-loop loads one contiguous `BT_NR`-wide slice per step
/// rather than `BT_NR` strided scalars. Each chain is still a strictly
/// sequential k-ascending sum — identical to the naive local accumulator —
/// and is added to `c` once at the end, exactly like the naive `*cv += s`.
/// (The naive loop has no zero-skip here, so neither does the tile.)
pub fn matmul_a_bt_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let mut packed = crate::arena::take(k * BT_NR);
    let mut j = 0;
    while j + BT_NR <= n {
        for p in 0..k {
            for q in 0..BT_NR {
                packed[p * BT_NR + q] = b[(j + q) * k + p];
            }
        }
        let mut i = 0;
        while i + MR <= m {
            let mut acc = [[0.0f32; BT_NR]; MR];
            for p in 0..k {
                let bp = <&[f32; BT_NR]>::try_from(&packed[p * BT_NR..p * BT_NR + BT_NR])
                    .unwrap();
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * k + p];
                    for (cv, &bv) in accr.iter_mut().zip(bp.iter()) {
                        *cv += av * bv;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let row = (i + r) * n + j;
                for (cv, &s) in c[row..row + BT_NR].iter_mut().zip(accr.iter()) {
                    *cv += s;
                }
            }
            i += MR;
        }
        // Row tail (< MR rows): per-row dots against the packed panel.
        while i < m {
            let arow = &a[i * k..(i + 1) * k];
            for q in 0..BT_NR {
                let mut s = 0.0;
                for (p, &av) in arow.iter().enumerate() {
                    s += av * packed[p * BT_NR + q];
                }
                c[i * n + j + q] += s;
            }
            i += 1;
        }
        j += BT_NR;
    }
    crate::arena::release(packed);
    // Column tail (< BT_NR b rows): naive dots straight from `b`.
    if j < n {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for jj in j..n {
                let brow = &b[jj * k..(jj + 1) * k];
                let mut s = 0.0;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    s += av * bv;
                }
                c[i * n + jj] += s;
            }
        }
    }
}

/// Gathers `rows` of a row-major `(·, cols)` table into `out`
/// (`rows.len() × cols`), parallel over output rows above the cutoff.
pub fn gather_rows(table: &[f32], rows: &[u32], out: &mut [f32], cols: usize) {
    debug_assert_eq!(out.len(), rows.len() * cols);
    let copy = |rs: &[u32], os: &mut [f32]| {
        for (r, orow) in rs.iter().zip(os.chunks_exact_mut(cols)) {
            let r = *r as usize;
            orow.copy_from_slice(&table[r * cols..(r + 1) * cols]);
        }
    };
    let par = rows.len() >= 2 && out.len() >= PAR_ROWS_MIN_ELEMS;
    obs_gather(rows.len(), par);
    if par {
        let rows_per = rows_per_chunk(PAR_ROW_CHUNK_ELEMS, cols);
        bootleg_pool::parallel_chunks_mut(out, rows_per * cols, |ci, oc| {
            let r0 = ci * rows_per;
            copy(&rows[r0..r0 + oc.len() / cols], oc);
        });
    } else {
        copy(rows, out);
    }
}

/// Numerically-stable softmax over each row of an `rows × cols` buffer,
/// written into `out` (may not alias `x`).
pub fn softmax_rows(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    let par = rows >= 2 && rows * cols >= PAR_ROWS_MIN_ELEMS;
    obs_softmax(rows, par);
    if par {
        let rows_per = rows_per_chunk(PAR_ROW_CHUNK_ELEMS, cols);
        bootleg_pool::parallel_chunks_mut(out, rows_per * cols, |ci, oc| {
            let r0 = ci * rows_per;
            let nr = oc.len() / cols;
            softmax_rows_serial(&x[r0 * cols..(r0 + nr) * cols], oc, nr, cols);
        });
    } else {
        softmax_rows_serial(x, out, rows, cols);
    }
}

fn softmax_rows_serial(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let xi = &x[r * cols..(r + 1) * cols];
        let oi = &mut out[r * cols..(r + 1) * cols];
        let mx = xi.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in oi.iter_mut().zip(xi.iter()) {
            let e = (v - mx).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in oi.iter_mut() {
            *o *= inv;
        }
    }
}

/// Backward of row softmax: given y = softmax(x) and dy, computes
/// dx = y ⊙ (dy − ⟨dy, y⟩) per row, accumulated into `dx`.
pub fn softmax_rows_backward(y: &[f32], dy: &[f32], dx: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let yi = &y[r * cols..(r + 1) * cols];
        let dyi = &dy[r * cols..(r + 1) * cols];
        let dxi = &mut dx[r * cols..(r + 1) * cols];
        let dot: f32 = yi.iter().zip(dyi.iter()).map(|(a, b)| a * b).sum();
        for ((d, &yv), &dyv) in dxi.iter_mut().zip(yi.iter()).zip(dyi.iter()) {
            *d += yv * (dyv - dot);
        }
    }
}

/// log-softmax over each row, written into `out`.
pub fn log_softmax_rows(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    let par = rows >= 2 && rows * cols >= PAR_ROWS_MIN_ELEMS;
    obs_softmax(rows, par);
    if par {
        let rows_per = rows_per_chunk(PAR_ROW_CHUNK_ELEMS, cols);
        bootleg_pool::parallel_chunks_mut(out, rows_per * cols, |ci, oc| {
            let r0 = ci * rows_per;
            let nr = oc.len() / cols;
            log_softmax_rows_serial(&x[r0 * cols..(r0 + nr) * cols], oc, nr, cols);
        });
    } else {
        log_softmax_rows_serial(x, out, rows, cols);
    }
}

fn log_softmax_rows_serial(x: &[f32], out: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let xi = &x[r * cols..(r + 1) * cols];
        let oi = &mut out[r * cols..(r + 1) * cols];
        let mx = xi.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = xi.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
        for (o, &v) in oi.iter_mut().zip(xi.iter()) {
            *o = v - lse;
        }
    }
}

/// Layer norm over each row with affine `gamma`/`beta` (length `cols`),
/// written into `out`; parallel over rows above the cutoff.
pub fn layer_norm_rows(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    rows: usize,
    cols: usize,
    eps: f32,
) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(gamma.len(), cols);
    debug_assert_eq!(beta.len(), cols);
    let norm = |xs: &[f32], os: &mut [f32], nr: usize| {
        for r in 0..nr {
            let xr = &xs[r * cols..(r + 1) * cols];
            let or = &mut os[r * cols..(r + 1) * cols];
            let mu: f32 = xr.iter().sum::<f32>() / cols as f32;
            let var: f32 = xr.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            for j in 0..cols {
                or[j] = (xr[j] - mu) * inv_std * gamma[j] + beta[j];
            }
        }
    };
    let par = rows >= 2 && rows * cols >= PAR_ROWS_MIN_ELEMS;
    obs_layer_norm(rows, par);
    if par {
        let rows_per = rows_per_chunk(PAR_ROW_CHUNK_ELEMS, cols);
        bootleg_pool::parallel_chunks_mut(out, rows_per * cols, |ci, oc| {
            let r0 = ci * rows_per;
            let nr = oc.len() / cols;
            norm(&x[r0 * cols..(r0 + nr) * cols], oc, nr);
        });
    } else {
        norm(x, out, rows);
    }
}

/// The tanh-approximation GELU and its derivative.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_deriv(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a: Vec<f32> = (0..6).map(|x| x as f32 * 0.5 - 1.0).collect();
        let b: Vec<f32> = (0..12).map(|x| (x as f32).sin()).collect();
        let mut c = vec![0.0; 2 * 4];
        matmul_acc(&a, &b, &mut c, 2, 3, 4);
        let expect = naive_matmul(&a, &b, 2, 3, 4);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_transpose() {
        // aᵀ b where a is 3x2 (so aᵀ is 2x3), b is 3x4 -> 2x4
        let a: Vec<f32> = (0..6).map(|x| x as f32 + 1.0).collect();
        let b: Vec<f32> = (0..12).map(|x| x as f32 - 5.0).collect();
        let mut c = vec![0.0; 2 * 4];
        matmul_at_b_acc(&a, &b, &mut c, 3, 2, 4);
        // build explicit transpose
        let mut at = vec![0.0; 6];
        for i in 0..3 {
            for j in 0..2 {
                at[j * 3 + i] = a[i * 2 + j];
            }
        }
        let expect = naive_matmul(&at, &b, 2, 3, 4);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_transpose() {
        // a (2x3) * bᵀ where b is 4x3 -> 2x4
        let a: Vec<f32> = (0..6).map(|x| x as f32 * 0.3).collect();
        let b: Vec<f32> = (0..12).map(|x| (x as f32).cos()).collect();
        let mut c = vec![0.0; 2 * 4];
        matmul_a_bt_acc(&a, &b, &mut c, 2, 3, 4);
        let mut bt = vec![0.0; 12];
        for i in 0..4 {
            for j in 0..3 {
                bt[j * 4 + i] = b[i * 3 + j];
            }
        }
        let expect = naive_matmul(&a, &bt, 2, 3, 4);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut y = [0.0; 6];
        softmax_rows(&x, &mut y, 2, 3);
        for r in 0..2 {
            let s: f32 = y[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(y[2] > y[1] && y[1] > y[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let x = [1000.0, 1001.0];
        let mut y = [0.0; 2];
        softmax_rows(&x, &mut y, 1, 2);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!((y[0] + y[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = [0.3, -1.2, 2.0];
        let mut s = [0.0; 3];
        let mut ls = [0.0; 3];
        softmax_rows(&x, &mut s, 1, 3);
        log_softmax_rows(&x, &mut ls, 1, 3);
        for i in 0..3 {
            assert!((s[i].ln() - ls[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_deriv_matches_fd() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((gelu_deriv(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    /// Runs `f` under a 1-thread and an 8-thread pool and asserts the two
    /// output buffers are bit-identical.
    fn assert_par_bitwise(mut f: impl FnMut() -> Vec<f32>) {
        let serial_pool = bootleg_pool::ThreadPool::new(1);
        let par_pool = bootleg_pool::ThreadPool::new(8);
        let serial = bootleg_pool::with_pool(&serial_pool, &mut f);
        let parallel = bootleg_pool::with_pool(&par_pool, &mut f);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.to_bits(), p.to_bits(), "element {i}: serial {s} vs parallel {p}");
        }
    }

    fn pseudo(n: usize, salt: u64) -> Vec<f32> {
        // Deterministic, non-trivial values with some exact zeros (to
        // exercise the skip-zero fast path).
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(salt);
                if h.is_multiple_of(17) {
                    0.0
                } else {
                    ((h >> 11) as f32 / (1u64 << 53) as f32) * 4.0 - 1.0
                }
            })
            .collect()
    }

    #[test]
    fn par_matmul_bit_identical_above_cutoff() {
        // 96×80×72 = 552960 flops ≫ PAR_MATMUL_FLOPS.
        let (m, k, n) = (96, 80, 72);
        let a = pseudo(m * k, 1);
        let b = pseudo(k * n, 2);
        assert_par_bitwise(|| {
            let mut c = vec![0.0; m * n];
            matmul_acc(&a, &b, &mut c, m, k, n);
            c
        });
    }

    #[test]
    fn par_matmul_at_b_bit_identical() {
        let (m, k, n) = (90, 64, 70);
        let a = pseudo(m * k, 3);
        let b = pseudo(m * n, 4);
        assert_par_bitwise(|| {
            let mut c = vec![0.0; k * n];
            matmul_at_b_acc(&a, &b, &mut c, m, k, n);
            c
        });
    }

    #[test]
    fn par_matmul_a_bt_bit_identical() {
        let (m, k, n) = (88, 60, 66);
        let a = pseudo(m * k, 5);
        let b = pseudo(n * k, 6);
        assert_par_bitwise(|| {
            let mut c = vec![0.0; m * n];
            matmul_a_bt_acc(&a, &b, &mut c, m, k, n);
            c
        });
    }

    #[test]
    fn par_batch_matmul_bit_identical() {
        let (bb, m, k, n) = (12, 20, 24, 18);
        let a = pseudo(bb * m * k, 7);
        let b = pseudo(bb * k * n, 8);
        assert_par_bitwise(|| {
            let mut c = vec![0.0; bb * m * n];
            batch_matmul_acc(&a, &b, &mut c, bb, m, k, n);
            c
        });
    }

    #[test]
    fn par_row_ops_bit_identical() {
        let (rows, cols) = (256, 96); // 24576 elems > PAR_ROWS_MIN_ELEMS
        let x = pseudo(rows * cols, 9);
        assert_par_bitwise(|| {
            let mut y = vec![0.0; rows * cols];
            softmax_rows(&x, &mut y, rows, cols);
            y
        });
        assert_par_bitwise(|| {
            let mut y = vec![0.0; rows * cols];
            log_softmax_rows(&x, &mut y, rows, cols);
            y
        });
        let gamma = pseudo(cols, 10);
        let beta = pseudo(cols, 11);
        assert_par_bitwise(|| {
            let mut y = vec![0.0; rows * cols];
            layer_norm_rows(&x, &gamma, &beta, &mut y, rows, cols, 1e-5);
            y
        });
    }

    #[test]
    fn par_gather_rows_bit_identical() {
        let cols = 64;
        let table = pseudo(500 * cols, 12);
        let rows: Vec<u32> = (0..400u32).map(|i| (i * 37) % 500).collect();
        assert_par_bitwise(|| {
            let mut out = vec![0.0; rows.len() * cols];
            gather_rows(&table, &rows, &mut out, cols);
            out
        });
    }

    #[test]
    fn small_sizes_stay_on_the_serial_path() {
        // Below every cutoff: must match the naive reference exactly.
        let a = pseudo(6, 21);
        let b = pseudo(12, 22);
        let mut c = vec![0.0; 8];
        matmul_acc(&a, &b, &mut c, 2, 3, 4);
        let expect = naive_matmul(&a, &b, 2, 3, 4);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
