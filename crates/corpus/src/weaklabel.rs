//! Weak labeling of unlabeled mentions (§3.3.2).
//!
//! Two heuristics, exactly as in the paper:
//!
//! 1. **Pronouns**: a pronoun on an entity's page matching the gender of that
//!    (person) page entity is labeled as the page entity.
//! 2. **Alternative names**: a known alias of the page entity appearing in a
//!    sentence on its page is labeled as the page entity.
//!
//! Both heuristics assign the *page* entity. That is usually correct, but for
//! "trap" mentions (a shared alias that actually refers to another entity)
//! it introduces label noise — which is why Table 11 shows weak labeling
//! helping the tail while slightly hurting the torso.

use crate::sentence::{LabelKind, Sentence};
use crate::vocab::Vocab;
use bootleg_kb::{CoarseType, KnowledgeBase};

/// Outcome counts of a weak-labeling pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeakLabelStats {
    /// Anchor mentions present before the pass.
    pub anchors: usize,
    /// Mentions labeled by the pronoun heuristic.
    pub pronoun_labels: usize,
    /// Mentions labeled by the alternative-name heuristic.
    pub alt_name_labels: usize,
    /// Weak labels whose assigned entity differs from the true gold
    /// (label noise introduced).
    pub mislabeled: usize,
    /// Mentions still unlabeled after the pass.
    pub still_unlabeled: usize,
}

impl WeakLabelStats {
    /// Total weak labels added.
    pub fn total_weak(&self) -> usize {
        self.pronoun_labels + self.alt_name_labels
    }

    /// Ratio of labeled mentions after vs before — the paper reports 1.7×.
    pub fn label_lift(&self) -> f64 {
        (self.anchors + self.total_weak()) as f64 / self.anchors.max(1) as f64
    }
}

/// Applies both weak-labeling heuristics in place, returning statistics.
pub fn apply(kb: &KnowledgeBase, vocab: &Vocab, sentences: &mut [Sentence]) -> WeakLabelStats {
    let he = vocab.id("he");
    let she = vocab.id("she");
    let mut stats = WeakLabelStats::default();

    for s in sentences.iter_mut() {
        let page = s.page;
        let page_entity = kb.entity(page);
        for m in &mut s.mentions {
            match m.label {
                LabelKind::Anchor => stats.anchors += 1,
                LabelKind::Weak => {}
                LabelKind::Unlabeled => {
                    // Heuristic 1: gender-matched pronoun on a person page.
                    if m.alias.is_none() {
                        let tok = s.tokens[m.start];
                        let matches = page_entity.coarse == CoarseType::Person
                            && page_entity.gender.map(|g| {
                                (g == bootleg_kb::Gender::Male && tok == he)
                                    || (g == bootleg_kb::Gender::Female && tok == she)
                            }) == Some(true);
                        if matches {
                            if m.gold != page {
                                stats.mislabeled += 1;
                            }
                            m.gold = page;
                            if !m.candidates.contains(&page) {
                                m.candidates.push(page);
                            }
                            m.label = LabelKind::Weak;
                            stats.pronoun_labels += 1;
                            continue;
                        }
                    }
                    // Heuristic 2: a known alias of the page entity.
                    if let Some(alias) = m.alias {
                        if kb.alias(alias).candidates.contains(&page) {
                            if m.gold != page {
                                stats.mislabeled += 1;
                            }
                            m.gold = page;
                            m.label = LabelKind::Weak;
                            stats.alt_name_labels += 1;
                            continue;
                        }
                    }
                    stats.still_unlabeled += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_corpus, CorpusConfig};
    use bootleg_kb::{generate as gen_kb, KbConfig};

    fn corpus() -> (bootleg_kb::KnowledgeBase, crate::generator::Corpus) {
        let kb = gen_kb(&KbConfig { n_entities: 1000, seed: 7, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 400, seed: 9, ..CorpusConfig::default() });
        (kb, c)
    }

    #[test]
    fn weak_labeling_recovers_most_unlabeled() {
        let (kb, mut c) = corpus();
        let before_unlabeled = c
            .train
            .iter()
            .flat_map(|s| s.mentions.iter())
            .filter(|m| m.label == LabelKind::Unlabeled)
            .count();
        let stats = apply(&kb, &c.vocab.clone(), &mut c.train);
        assert!(stats.total_weak() > 0);
        assert!(
            stats.total_weak() + stats.still_unlabeled == before_unlabeled,
            "every unlabeled mention is either recovered or counted"
        );
        // Page-generated unlabeled mentions are all recoverable by
        // construction (pronoun or page-alias), so most should be labeled.
        assert!(
            stats.total_weak() as f64 / before_unlabeled.max(1) as f64 > 0.8,
            "recovered {} of {}",
            stats.total_weak(),
            before_unlabeled
        );
    }

    #[test]
    fn both_heuristics_fire() {
        let (kb, mut c) = corpus();
        let stats = apply(&kb, &c.vocab.clone(), &mut c.train);
        assert!(stats.pronoun_labels > 0, "pronoun heuristic never fired");
        assert!(stats.alt_name_labels > 0, "alt-name heuristic never fired");
    }

    #[test]
    fn traps_become_mislabeled_noise() {
        let (kb, mut c) = corpus();
        let stats = apply(&kb, &c.vocab.clone(), &mut c.train);
        assert!(stats.mislabeled > 0, "trap mentions should produce label noise");
        // But noise must be a minority of weak labels.
        assert!(stats.mislabeled * 3 < stats.total_weak());
    }

    #[test]
    fn label_lift_in_paper_ballpark() {
        // Paper reports a 1.7x increase in labeled mentions.
        let (kb, mut c) = corpus();
        let stats = apply(&kb, &c.vocab.clone(), &mut c.train);
        let lift = stats.label_lift();
        assert!(lift > 1.05 && lift < 2.5, "lift {lift}");
    }

    #[test]
    fn weak_labels_never_used_for_eval_population() {
        let (kb, mut c) = corpus();
        apply(&kb, &c.vocab.clone(), &mut c.train);
        for s in &c.train {
            for m in s.anchor_mentions() {
                assert_eq!(m.label, LabelKind::Anchor);
            }
        }
    }

    #[test]
    fn idempotent() {
        let (kb, mut c) = corpus();
        let vocab = c.vocab.clone();
        let s1 = apply(&kb, &vocab, &mut c.train);
        let s2 = apply(&kb, &vocab, &mut c.train);
        assert_eq!(s2.total_weak(), 0, "second pass adds nothing");
        assert_eq!(s2.anchors, s1.anchors);
    }
}
