//! Model-facing view of a sentence: tokens plus mention/candidate structure.

use bootleg_corpus::{LabelKind, Sentence};
use bootleg_kb::EntityId;

/// One mention to disambiguate.
#[derive(Clone, Debug)]
pub struct ExMention {
    /// First token index of the span.
    pub first: usize,
    /// Last token index of the span (inclusive).
    pub last: usize,
    /// Candidate entities Γ(m), most popular first.
    pub candidates: Vec<EntityId>,
    /// Index of the gold entity within `candidates` (None at pure inference).
    pub gold: Option<u32>,
}

/// One disambiguation example.
#[derive(Clone, Debug)]
pub struct Example {
    /// Token ids.
    pub tokens: Vec<u32>,
    /// Mentions in textual order.
    pub mentions: Vec<ExMention>,
}

impl Example {
    /// Builds a *training* example: all labeled mentions (anchors + weak
    /// labels) with known gold indexes. Returns `None` when nothing is
    /// labeled.
    pub fn training(s: &Sentence) -> Option<Example> {
        let mentions: Vec<ExMention> = s
            .mentions
            .iter()
            .filter(|m| m.label != LabelKind::Unlabeled)
            .filter_map(|m| {
                let gold = m.gold_index()? as u32;
                Some(ExMention {
                    first: m.start,
                    last: m.last,
                    candidates: m.candidates.clone(),
                    gold: Some(gold),
                })
            })
            .collect();
        (!mentions.is_empty()).then_some(Example { tokens: s.tokens.clone(), mentions })
    }

    /// Builds an *evaluation* example: anchor mentions passing the §4.1
    /// filters (gold in candidates, more than one candidate). All mentions
    /// are still fed to the model (context), but only the filtered ones
    /// carry gold indexes; callers evaluate those.
    pub fn evaluation(s: &Sentence) -> Option<Example> {
        let mentions: Vec<ExMention> = s
            .mentions
            .iter()
            .filter(|m| m.label == LabelKind::Anchor && m.evaluable())
            .map(|m| ExMention {
                first: m.start,
                last: m.last,
                candidates: m.candidates.clone(),
                gold: Some(m.gold_index().expect("evaluable implies gold present") as u32),
            })
            .collect();
        (!mentions.is_empty()).then_some(Example { tokens: s.tokens.clone(), mentions })
    }

    /// Builds an inference example from extracted mentions (no gold).
    pub fn inference(tokens: Vec<u32>, mentions: Vec<ExMention>) -> Example {
        Example { tokens, mentions }
    }

    /// Total number of candidates across all mentions (the flattened S).
    pub fn total_candidates(&self) -> usize {
        self.mentions.iter().map(|m| m.candidates.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_corpus::{Mention, Pattern};

    fn sent() -> Sentence {
        Sentence {
            tokens: vec![1, 2, 3, 4],
            mentions: vec![
                Mention {
                    start: 1,
                    last: 1,
                    alias: None,
                    gold: EntityId(5),
                    candidates: vec![EntityId(4), EntityId(5)],
                    label: LabelKind::Anchor,
                },
                Mention {
                    start: 2,
                    last: 2,
                    alias: None,
                    gold: EntityId(7),
                    candidates: vec![EntityId(7), EntityId(8)],
                    label: LabelKind::Weak,
                },
                Mention {
                    start: 3,
                    last: 3,
                    alias: None,
                    gold: EntityId(9),
                    candidates: vec![EntityId(9)],
                    label: LabelKind::Anchor,
                },
            ],
            page: EntityId(0),
            pattern: Pattern::Affordance,
        }
    }

    #[test]
    fn training_includes_weak_labels() {
        let e = Example::training(&sent()).expect("labeled mentions exist");
        assert_eq!(e.mentions.len(), 3);
        assert_eq!(e.mentions[0].gold, Some(1));
        assert_eq!(e.mentions[1].gold, Some(0));
    }

    #[test]
    fn evaluation_filters_single_candidate_and_weak() {
        let e = Example::evaluation(&sent()).expect("evaluable mention exists");
        // Only the first mention: anchor + 2 candidates. The weak mention and
        // the single-candidate anchor are filtered.
        assert_eq!(e.mentions.len(), 1);
        assert_eq!(e.mentions[0].first, 1);
    }

    #[test]
    fn none_when_nothing_usable() {
        let mut s = sent();
        for m in &mut s.mentions {
            m.label = LabelKind::Unlabeled;
        }
        assert!(Example::training(&s).is_none());
        assert!(Example::evaluation(&s).is_none());
    }

    #[test]
    fn total_candidates_sums() {
        let e = Example::training(&sent()).expect("example");
        assert_eq!(e.total_candidates(), 5);
    }
}
