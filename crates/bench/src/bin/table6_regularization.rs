//! Tables 6 and 9: the regularization ablation on the micro (Wikipedia
//! subset) workbench — fixed p(e) ∈ {0, 20, 50, 80}%, PopPow, and the three
//! inverse-popularity schemes, plus NED-Base and the signal ablations.
//!
//! Run: `cargo run --release -p bootleg-bench --bin table6_regularization`

use bootleg_baselines::{train_ned_base, NedBase, NedBaseConfig};
use bootleg_bench::{micro_train_config, row, Results, ResultsTable, Workbench};
use bootleg_core::{BootlegConfig, Example, ModelVariant, RegScheme};
use bootleg_eval::par_evaluate;

fn main() -> std::io::Result<()> {
    let wb = Workbench::micro(7);
    let eval_set = &wb.corpus.dev;
    eprintln!(
        "[micro setup] train={} dev={} entities={}",
        wb.corpus.train.len(),
        eval_set.len(),
        wb.kb.num_entities()
    );

    let widths = [24, 8, 8, 8, 8];
    let headers = ["Model", "All", "Torso", "Tail", "Unseen"];
    let mut table = ResultsTable::new(&headers);
    println!("Table 9: micro-dataset ablation (micro F1)");
    println!("{}", row(&headers.map(String::from), &widths));

    let print_row = |table: &mut ResultsTable, name: String, r: &bootleg_eval::SliceReport| {
        let cells = [
            name,
            format!("{:.1}", r.all.f1()),
            format!("{:.1}", r.torso.f1()),
            format!("{:.1}", r.tail.f1()),
            format!("{:.1}", r.unseen.f1()),
        ];
        table.add(&cells);
        println!("{}", row(&cells, &widths));
    };

    // NED-Base row.
    let mut ned = NedBase::new(&wb.kb, &wb.corpus.vocab, NedBaseConfig::default());
    train_ned_base(&mut ned, &wb.corpus.train, &micro_train_config());
    let r = par_evaluate(eval_set, &wb.counts, |ex: &Example| ned.predict_indices(ex));
    print_row(&mut table, "NED-Base".into(), &r);

    // Signal ablations (standard InvPopPow regularization).
    for variant in [ModelVariant::EntOnly, ModelVariant::TypeOnly, ModelVariant::KgOnly] {
        let model = wb
            .train_bootleg(BootlegConfig::default().with_variant(variant), &micro_train_config());
        let r = par_evaluate(eval_set, &wb.counts, wb.predictor(&model));
        print_row(&mut table, variant.name().into(), &r);
    }

    // Regularization schemes on the full model (Tables 6 + 9 bottom).
    let schemes = [
        RegScheme::None,
        RegScheme::Fixed(0.2),
        RegScheme::Fixed(0.5),
        RegScheme::Fixed(0.8),
        RegScheme::InvPopLog,
        RegScheme::InvPopPow,
        RegScheme::InvPopLin,
        RegScheme::PopPow,
    ];
    let mut unseen_line = Vec::new();
    for scheme in schemes {
        let config = BootlegConfig { regularization: scheme, ..BootlegConfig::default() };
        let model = wb.train_bootleg(config, &micro_train_config());
        let r = par_evaluate(eval_set, &wb.counts, wb.predictor(&model));
        print_row(&mut table, format!("Bootleg (p(e)={})", scheme.name()), &r);
        unseen_line.push((scheme.name(), r.unseen.f1()));
    }

    // Mention counts.
    let r = par_evaluate(eval_set, &wb.counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let cells = [
        "# Mentions".to_string(),
        r.all.gold.to_string(),
        r.torso.gold.to_string(),
        r.tail.gold.to_string(),
        r.unseen.gold.to_string(),
    ];
    table.add(&cells);
    println!("{}", row(&cells, &widths));

    println!("\nTable 6: unseen-entity F1 by regularization scheme");
    let mut unseen_table = ResultsTable::new(&["Scheme", "Unseen F1"]);
    for (name, f1) in &unseen_line {
        println!("  {name:<12} {f1:.1}");
        unseen_table.add(&[name.to_string(), format!("{f1:.1}")]);
    }

    let mut results = Results::new("table6_regularization");
    results.set_table("rows", table);
    results.set_table("unseen_by_scheme", unseen_table);
    results.write()?;
    Ok(())
}
