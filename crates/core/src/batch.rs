//! Ragged micro-batched inference (PR 7): N examples, one graph, outputs
//! bit-identical to the sequential pass.
//!
//! # Layout
//!
//! A batch never pads examples against each other. Candidate rows are
//! concatenated into one tall `(ΣS_i, ·)` matrix and token rows into
//! `(ΣN_i, ·)`; every *row-wise* op (matmul against a weight, LayerNorm,
//! GELU, gather, bias add, the MLPs) runs once on the tall matrix, which is
//! where the speedup lives — per-op dispatch is amortized over the batch
//! and the register-tiled kernels see tall matrices instead of skinny ones.
//! The only cross-row ops — attention softmax/context and the KG adjacency
//! products — run per example on contiguous row slices, so examples cannot
//! attend to each other and each slice replays the sequential op sequence
//! on bitwise-equal inputs.
//!
//! The per-candidate type/relation bags *are* padded (to the batch's widest
//! bag) because additive-attention pooling dominates the embed phase. Pads
//! sit after the real entries and are erased by a `-inf` additive mask
//! before the softmax: `exp(-inf) = +0.0` exactly, appending `+0.0` to a
//! left-to-right sum changes nothing, and the matmul kernels skip
//! exact-zero weights — so pooled rows are bit-identical to the unpadded
//! path (see [`bootleg_nn::AddAttn::pool_ragged`]).
//!
//! # Deadlines
//!
//! Deadlines are per example and checked at the same phase boundaries as
//! the sequential pass. An expired example is marked
//! [`ForwardInterrupted`] and *evicted from the result*, not the batch:
//! its rows keep flowing (they cannot be removed from a built graph), but
//! the batch only aborts early when every example has expired.
//!
//! # Inference only
//!
//! Training consumes dropout/masking RNG sequentially per graph, so a
//! batched training pass cannot reproduce per-example RNG streams.
//! [`BootlegModel::run`] routes `training` options through the sequential
//! engine instead.

use crate::example::Example;
use crate::forward::{Deadline, ForwardInterrupted, ForwardOptions, ForwardOutput};
use crate::model::BootlegModel;
use bootleg_kb::{EntityId, KnowledgeBase};
use bootleg_nn::posenc;
use bootleg_tensor::{arena, Graph, Tensor, Var};

/// Per-example candidate layout and KG adjacency, built during candgen.
struct ExLayout {
    /// Index into the caller's `examples` slice.
    ei: usize,
    /// Flattened candidate entity ids (one per candidate row).
    cand_entities: Vec<u32>,
    /// Local mention index of each candidate row.
    mention_of: Vec<usize>,
    /// Local candidate-row offsets per mention (`len = mentions + 1`).
    offsets: Vec<usize>,
    /// KG adjacency matrices over this example's candidate rows.
    kg_mats: Vec<Tensor>,
    /// First candidate row of this example in the global stack.
    s_start: usize,
    /// First mention of this example in the global mention list.
    m_start: usize,
}

impl BootlegModel {
    /// The unified forward entrypoint: runs the model on a slice of
    /// examples, batched-first.
    ///
    /// - An empty slice returns `Ok(vec![])`.
    /// - A 1-example slice (or any `training` options) runs the sequential
    ///   engine and reproduces the historical per-example behavior exactly.
    /// - Otherwise the examples run as one ragged micro-batch whose outputs
    ///   are bit-identical to the sequential loop.
    ///
    /// The legacy entrypoints (`forward`, `infer`, `forward_with`,
    /// `try_forward_with`, `infer_within`) remain as thin wrappers over
    /// this method and the sequential engine.
    pub fn run(
        &self,
        kb: &KnowledgeBase,
        examples: &[Example],
        opts: ForwardOptions,
    ) -> Result<Vec<ForwardOutput>, ForwardInterrupted> {
        if examples.is_empty() {
            return Ok(Vec::new());
        }
        if opts.training || examples.len() == 1 {
            return examples.iter().map(|ex| self.try_forward_with(kb, ex, opts)).collect();
        }
        let refs: Vec<&Example> = examples.iter().collect();
        let deadlines = vec![opts.deadline; examples.len()];
        self.try_forward_batch(kb, &refs, &opts, &deadlines).into_iter().collect()
    }

    /// Batched inference without a deadline: panics on interruption, which
    /// cannot happen with [`Deadline::none`].
    pub fn infer_batch(&self, kb: &KnowledgeBase, examples: &[Example]) -> Vec<ForwardOutput> {
        self.run(kb, examples, ForwardOptions::inference())
            .expect("unlimited deadline cannot interrupt")
    }

    /// Runs N examples as one ragged micro-batch with *per-example*
    /// deadlines (the serving layer's eviction rule needs them to differ).
    /// Returns one result per example, in order; an expired example fails
    /// alone with the phase it reached while the rest of the batch
    /// completes. Inference-only — panics on `opts.training`.
    pub fn try_forward_batch(
        &self,
        kb: &KnowledgeBase,
        examples: &[&Example],
        opts: &ForwardOptions,
        deadlines: &[Deadline],
    ) -> Vec<Result<ForwardOutput, ForwardInterrupted>> {
        assert_eq!(examples.len(), deadlines.len(), "one deadline per example");
        assert!(!opts.training, "batched forward is inference-only; use run()");
        if examples.is_empty() {
            return Vec::new();
        }
        if examples.len() == 1 {
            return vec![self.try_forward_with(
                kb,
                examples[0],
                opts.with_deadline(deadlines[0]),
            )];
        }
        for ex in examples {
            assert!(!ex.mentions.is_empty(), "forward needs at least one mention");
        }
        let _fwd = bootleg_obs::span!("forward_batch");
        bootleg_obs::counter!("forward.batch_examples").add(examples.len() as u64);
        let g = Graph::with_mode(false, opts.seed);
        let ps = &self.params;
        let cfg = &self.config;

        let mut out: Vec<Option<Result<ForwardOutput, ForwardInterrupted>>> =
            (0..examples.len()).map(|_| None).collect();
        let fail = |out: &mut Vec<Option<Result<ForwardOutput, ForwardInterrupted>>>,
                    ei: usize,
                    phase: &'static str| {
            out[ei] = Some(Err(ForwardInterrupted { phase }));
        };

        // ---- Candidate generation (per example; plain tensors, no graph
        // nodes) ----  An example whose deadline expires here is excluded
        // from the batch layout entirely — its rows never enter the graph.
        let ph = bootleg_obs::trace::phase("candgen", "forward.candgen_ns");
        let mut included: Vec<ExLayout> = Vec::with_capacity(examples.len());
        let mut s_total = 0usize;
        let mut m_total = 0usize;
        for (ei, ex) in examples.iter().enumerate() {
            let mut cand_entities: Vec<u32> = Vec::with_capacity(ex.total_candidates());
            let mut mention_of: Vec<usize> = Vec::new();
            let mut offsets: Vec<usize> = Vec::with_capacity(ex.mentions.len() + 1);
            for (mi, m) in ex.mentions.iter().enumerate() {
                offsets.push(cand_entities.len());
                for &c in &m.candidates {
                    cand_entities.push(c.0);
                    mention_of.push(mi);
                }
            }
            offsets.push(cand_entities.len());
            let s_i = cand_entities.len();

            let mut kg_mats: Vec<Tensor> = Vec::new();
            if cfg.use_kg() {
                let mut k = arena::take_zeroed(s_i * s_i);
                // Connectivity is symmetric, so probe each unordered pair
                // once and write both cells.
                for i in 0..s_i {
                    for j in i + 1..s_i {
                        if mention_of[i] != mention_of[j]
                            && kb
                                .connected(EntityId(cand_entities[i]), EntityId(cand_entities[j]))
                                .is_some()
                        {
                            k[i * s_i + j] = 1.0;
                            k[j * s_i + i] = 1.0;
                        }
                    }
                }
                kg_mats.push(Tensor::new([s_i, s_i], k));
                if cfg.cooccur_kg {
                    let mut k2 = arena::take_zeroed(s_i * s_i);
                    if let Some(cx) = &self.cooccur {
                        for i in 0..s_i {
                            for j in 0..s_i {
                                if mention_of[i] != mention_of[j] {
                                    k2[i * s_i + j] = cx.weight(
                                        EntityId(cand_entities[i]),
                                        EntityId(cand_entities[j]),
                                    );
                                }
                            }
                        }
                    }
                    kg_mats.push(Tensor::new([s_i, s_i], k2));
                }
                if cfg.kg_two_hop {
                    let mut k3 = arena::take_zeroed(s_i * s_i);
                    for i in 0..s_i {
                        for j in 0..s_i {
                            if mention_of[i] != mention_of[j]
                                && kb.two_hop_connected(
                                    EntityId(cand_entities[i]),
                                    EntityId(cand_entities[j]),
                                )
                            {
                                k3[i * s_i + j] = 0.5;
                            }
                        }
                    }
                    kg_mats.push(Tensor::new([s_i, s_i], k3));
                }
            }
            if deadlines[ei].expired() {
                fail(&mut out, ei, "candgen");
                continue;
            }
            included.push(ExLayout {
                ei,
                cand_entities,
                mention_of,
                offsets,
                kg_mats,
                s_start: s_total,
                m_start: m_total,
            });
            s_total += s_i;
            m_total += examples[ei].mentions.len();
        }
        drop(ph);
        if included.is_empty() {
            return out.into_iter().map(|o| o.expect("all failed at candgen")).collect();
        }

        // Global index maps over the included examples.
        let cand_spans: Vec<(usize, usize)> =
            included.iter().map(|l| (l.s_start, l.cand_entities.len())).collect();
        let mut global_cands: Vec<u32> = Vec::with_capacity(s_total);
        let mut cand_mention_row: Vec<u32> = Vec::with_capacity(s_total);
        for l in &included {
            global_cands.extend_from_slice(&l.cand_entities);
            cand_mention_row.extend(l.mention_of.iter().map(|&mi| (l.m_start + mi) as u32));
        }

        // ---- Signal encoding (§3.1), batched ----
        let ph = bootleg_obs::trace::phase("embed", "forward.embed_ns");

        // W: all sentences through the word encoder in one ragged pass.
        let sentences: Vec<&[u32]> =
            included.iter().map(|l| examples[l.ei].tokens.as_slice()).collect();
        let (w, tok_spans) = {
            let _s = bootleg_obs::span!("wordenc");
            self.word_encoder.forward_batch(&g, ps, &sentences)
        };

        let mut parts: Vec<Var> = Vec::new();
        // Static per-entity payloads (entity row, pooled type/rel bags, title
        // mean) may come straight from the entity-repr cache; the
        // mention-dependent parts (coarse type, position encoding) stay live.
        // Gradient-bearing passes skip the cache: leaves carry no params.
        let mut cached =
            if opts.build_loss { None } else { self.gather_cached_parts(&global_cands) };
        if cfg.use_entity() {
            // No training mask at inference: the gather alone.
            parts.push(match cached.as_mut().and_then(|c| c.entity.take()) {
                Some(t) => g.leaf(t),
                None => g.gather_rows(ps, self.entity_emb, &global_cands),
            });
        }

        // Type prediction (Appendix A), batched over all mentions: the
        // first/last contextual token rows of every mention at once.
        let mut type_losses: Vec<Option<Var>> = vec![None; examples.len()];
        let mut mention_type_vec: Option<Var> = None;
        if let Some(tp) = &self.type_pred {
            let mut firsts: Vec<u32> = Vec::with_capacity(m_total);
            let mut lasts: Vec<u32> = Vec::with_capacity(m_total);
            for (l, &(t_start, _)) in included.iter().zip(&tok_spans) {
                for m in &examples[l.ei].mentions {
                    firsts.push((t_start + m.first) as u32);
                    lasts.push((t_start + m.last) as u32);
                }
            }
            let mention_emb = w.select_rows(&firsts).add(&w.select_rows(&lasts));
            let logits = tp.mlp.forward(&g, ps, &mention_emb); // (M, 6)
            let probs = logits.softmax_last();
            let coarse = g.dense_param(ps, tp.coarse_emb); // (6, coarse_dim)
            mention_type_vec = Some(probs.matmul(&coarse)); // (M, coarse_dim)
            // Per-example supervision, kept per example so each output's
            // loss matches its sequential counterpart bit-for-bit.
            if opts.build_loss {
                for l in &included {
                    let ex = examples[l.ei];
                    let mut targets = Vec::new();
                    let mut sup_rows: Vec<u32> = Vec::new();
                    for (mi, m) in ex.mentions.iter().enumerate() {
                        if let Some(gi) = m.gold {
                            let gold_entity = m.candidates[gi as usize];
                            targets.push(self.entity_coarse[gold_entity.idx()]);
                            sup_rows.push((l.m_start + mi) as u32);
                        }
                    }
                    if !sup_rows.is_empty() {
                        let rows = logits.select_rows(&sup_rows);
                        type_losses[l.ei] = Some(rows.cross_entropy_rows(&targets));
                    }
                }
            }
        }

        if cfg.use_types() {
            let _s = bootleg_obs::span!("pool_types");
            parts.push(match cached.as_mut().and_then(|c| c.types.take()) {
                Some(t) => g.leaf(t),
                None => self.pool_bags_batched(
                    &g,
                    &global_cands,
                    self.type_emb,
                    &self.entity_types,
                    &self.type_attn,
                ),
            });
            if let Some(tv) = &mention_type_vec {
                // The predicted coarse type of each mention, repeated onto
                // every one of its candidates.
                parts.push(tv.select_rows(&cand_mention_row)); // (S, coarse_dim)
            }
        }

        if cfg.use_kg() {
            let _s = bootleg_obs::span!("pool_rels");
            parts.push(match cached.as_mut().and_then(|c| c.rels.take()) {
                Some(t) => g.leaf(t),
                None => self.pool_bags_batched(
                    &g,
                    &global_cands,
                    self.rel_emb,
                    &self.entity_rels,
                    &self.rel_attn,
                ),
            });
        }

        if cfg.title_feature {
            parts.push(match cached.as_mut().and_then(|c| c.titles.take()) {
                Some(t) => g.leaf(t),
                None => self.pool_titles_batched(&g, &global_cands),
            });
        }

        let part_refs: Vec<&Var> = parts.iter().collect();
        let _s2 = bootleg_obs::span!("emb_mlp");
        let concat = g.concat_last(&part_refs); // (ΣS, mlp_input_dim)
        let mut e_mat = self.mlp.forward(&g, ps, &concat); // (ΣS, H)
        drop(_s2);

        if cfg.position_encoding {
            let table = self.word_encoder.pos_table();
            let d = cfg.word_encoder.d_model;
            let mut enc = arena::take(s_total * 2 * d);
            {
                let mut erows = enc.chunks_exact_mut(2 * d);
                for l in &included {
                    let ex = examples[l.ei];
                    for &mi in &l.mention_of {
                        let m = &ex.mentions[mi];
                        let erow = erows.next().expect("one encoding row per candidate");
                        posenc::write_mention_span_encoding(table, m.first, m.last, erow);
                    }
                }
            }
            let enc_var = g.leaf(Tensor::new([s_total, 2 * d], enc));
            e_mat = e_mat.add(&self.pos_proj.forward(&g, ps, &enc_var));
        }
        drop(ph);
        let mut all_failed = true;
        for l in &included {
            if out[l.ei].is_none() && deadlines[l.ei].expired() {
                fail(&mut out, l.ei, "embed");
            }
            all_failed &= out[l.ei].is_some();
        }
        if all_failed {
            return out.into_iter().map(|o| o.expect("all failed by embed")).collect();
        }

        // ---- Stacked layers (§3.2), ragged ----
        let ph = bootleg_obs::trace::phase("attention", "forward.attention_ns");
        let mut e_prime = e_mat.clone();
        // Per KG matrix, the per-example outputs of the last layer (for the
        // scoring ensemble): `last_e_ks[j][b]` is example b's `(S_b, H)`.
        let n_kg = included[0].kg_mats.len();
        let mut last_e_ks: Vec<Vec<Var>> = Vec::new();
        for l in 0..cfg.n_layers {
            if l > 0 {
                let mut live = false;
                for lay in &included {
                    if out[lay.ei].is_none() && deadlines[lay.ei].expired() {
                        fail(&mut out, lay.ei, "attention");
                    }
                    live |= out[lay.ei].is_none();
                }
                if !live {
                    return out
                        .into_iter()
                        .map(|o| o.expect("all failed in attention"))
                        .collect();
                }
            }
            let p2e = self.phrase2ent[l].forward_ragged(
                &g,
                ps,
                &e_mat,
                Some(&w),
                &cand_spans,
                &tok_spans,
            );
            e_prime = if cfg.use_ent2ent {
                let e2e =
                    self.ent2ent[l].forward_ragged(&g, ps, &e_mat, None, &cand_spans, &cand_spans);
                p2e.add(&e2e)
            } else {
                p2e
            };
            last_e_ks.clear();
            last_e_ks.resize_with(n_kg, Vec::new);
            let mut per_ex_next: Vec<Var> = Vec::with_capacity(included.len());
            for (lay, &(s_start, s_len)) in included.iter().zip(&cand_spans) {
                let rows: Vec<u32> = (s_start..s_start + s_len).map(|r| r as u32).collect();
                let ep = e_prime.select_rows(&rows); // (S_b, H)
                let mut eks: Vec<Var> = Vec::with_capacity(n_kg);
                for (j, kmat) in lay.kg_mats.iter().enumerate() {
                    let kv = g.leaf(kmat.clone());
                    let wv = g.dense_param(ps, self.kg_w[l][j]);
                    let attn = kv.add_scaled_identity(&wv).softmax_last();
                    eks.push(attn.matmul(&ep).add(&ep));
                }
                let next = match eks.len() {
                    0 => ep,
                    1 => eks[0].clone(),
                    n => {
                        let mut acc = eks[0].clone();
                        for ek in &eks[1..] {
                            acc = acc.add(ek);
                        }
                        acc.scale(1.0 / n as f32)
                    }
                };
                per_ex_next.push(next);
                for (j, ek) in eks.into_iter().enumerate() {
                    last_e_ks[j].push(ek);
                }
            }
            e_mat = if n_kg == 0 {
                e_prime.clone()
            } else {
                let refs: Vec<&Var> = per_ex_next.iter().collect();
                g.concat_rows(&refs)
            };
        }
        drop(ph);
        {
            let mut live = false;
            for lay in &included {
                if out[lay.ei].is_none() && deadlines[lay.ei].expired() {
                    fail(&mut out, lay.ei, "attention");
                }
                live |= out[lay.ei].is_none();
            }
            if !live {
                return out.into_iter().map(|o| o.expect("all failed by attention")).collect();
            }
        }

        // ---- Ensemble scoring: S = max(E_k vᵀ, E′ vᵀ) ----
        let ph = bootleg_obs::trace::phase("score", "forward.score_ns");
        let v = g.dense_param(ps, self.score_v); // (H, 1)
        let s_var = if cfg.ensemble_scoring {
            let mut s = e_prime.matmul(&v); // (ΣS, 1)
            for per_ex in &last_e_ks {
                let refs: Vec<&Var> = per_ex.iter().collect();
                let ek = g.concat_rows(&refs); // (ΣS, H)
                s = s.maximum(&ek.matmul(&v));
            }
            s
        } else {
            e_mat.matmul(&v)
        };

        // ---- Per-example unstacking: scores, predictions, losses, reprs ----
        let final_e = e_mat.value();
        for lay in &included {
            if out[lay.ei].is_some() {
                continue;
            }
            let ex = examples[lay.ei];
            let mut dis_loss: Option<Var> = None;
            let mut n_supervised = 0usize;
            let mut scores = Vec::with_capacity(ex.mentions.len());
            let mut predictions = Vec::with_capacity(ex.mentions.len());
            for (mi, m) in ex.mentions.iter().enumerate() {
                let k = m.candidates.len();
                let rows: Vec<u32> = (lay.s_start + lay.offsets[mi]
                    ..lay.s_start + lay.offsets[mi + 1])
                    .map(|r| r as u32)
                    .collect();
                let mention_scores = s_var.select_rows(&rows).reshape(&[1, k]);
                let values = mention_scores.value();
                scores.push(values.data().to_vec());
                predictions.push(values.argmax());
                if opts.build_loss {
                    if let Some(gi) = m.gold {
                        let ce = mention_scores.cross_entropy_rows(&[gi]);
                        n_supervised += 1;
                        dis_loss = Some(match dis_loss {
                            Some(acc) => acc.add(&ce),
                            None => ce,
                        });
                    }
                }
            }
            let loss = match (dis_loss, n_supervised) {
                (Some(lv), n) if n > 0 => {
                    let lv = lv.scale(1.0 / n as f32);
                    Some(match type_losses[lay.ei].take() {
                        Some(tl) => lv.add(&tl),
                        None => lv,
                    })
                }
                _ => None,
            };
            let mention_reprs = predictions
                .iter()
                .enumerate()
                .map(|(mi, &p)| final_e.row(lay.s_start + lay.offsets[mi] + p).to_vec())
                .collect();
            let candidate_reprs = if opts.candidate_reprs {
                ex.mentions
                    .iter()
                    .enumerate()
                    .map(|(mi, m)| {
                        (0..m.candidates.len())
                            .map(|j| final_e.row(lay.s_start + lay.offsets[mi] + j).to_vec())
                            .collect()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            out[lay.ei] = Some(Ok(ForwardOutput {
                graph: g.clone(),
                loss,
                scores,
                predictions,
                mention_reprs,
                candidate_reprs,
            }));
        }
        drop(ph);

        out.into_iter().map(|o| o.expect("every example resolved")).collect()
    }

    /// Pools every candidate's embedding bag (types or relations) in one
    /// padded ragged pass — bit-identical per row to a per-candidate
    /// `AddAttn::forward` loop for any pad width (see
    /// [`bootleg_nn::AddAttn::pool_ragged`]). Shared by the sequential and
    /// batched engines and by the entity-repr cache's build kernel.
    pub(crate) fn pool_bags_batched(
        &self,
        g: &Graph,
        cand_entities: &[u32],
        emb: bootleg_tensor::ParamId,
        bags: &[Vec<u32>],
        attn: &bootleg_nn::AddAttn,
    ) -> Var {
        let lens: Vec<usize> = cand_entities.iter().map(|&e| bags[e as usize].len()).collect();
        let t_max = lens.iter().copied().max().unwrap_or(1).max(1);
        let mut flat: Vec<u32> = Vec::with_capacity(cand_entities.len() * t_max);
        for &e in cand_entities {
            let ids = &bags[e as usize];
            flat.extend_from_slice(ids);
            // Pad with the bag's last id: always a valid row, and its
            // softmax weight is exactly zero, so the choice is inert.
            let pad = *ids.last().expect("bags are never empty");
            flat.resize(flat.len() + (t_max - ids.len()), pad);
        }
        let bag = g.gather_rows(&self.params, emb, &flat); // (S·t_max, d)
        attn.pool_ragged(g, &self.params, &bag, &lens, t_max)
    }

    /// Mean word embedding of every candidate's title tokens (App. B) as one
    /// flat gather + ragged segment mean — bit-identical per row to a
    /// per-candidate `mean_rows` loop, since
    /// [`bootleg_tensor::Var::mean_rows_segments`] replays `mean_rows`'
    /// accumulation order within each segment. Shared by the sequential and
    /// batched engines and by the entity-repr cache's build kernel.
    pub(crate) fn pool_titles_batched(&self, g: &Graph, cand_entities: &[u32]) -> Var {
        let mut lens: Vec<usize> = Vec::with_capacity(cand_entities.len());
        let mut flat: Vec<u32> = Vec::new();
        for &e in cand_entities {
            let ids = &self.entity_titles[e as usize];
            lens.push(ids.len());
            flat.extend_from_slice(ids);
        }
        let rows = g.gather_rows(&self.params, self.word_encoder.emb, &flat); // (Σ|title|, d)
        rows.mean_rows_segments(&lens) // (S, d_model)
    }
}
