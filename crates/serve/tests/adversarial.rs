//! Property tests: adversarially malformed requests against the serving
//! layer. Whatever garbage arrives — out-of-vocab tokens, inverted spans,
//! entity ids far outside the KB, empty candidate lists — the serving layer
//! never unwinds a panic to the caller and gives every request exactly one
//! typed outcome: a tier answer or a rejection.

use bootleg_baselines::PopularityPrior;
use bootleg_core::{BootlegConfig, BootlegModel, ExMention, Example};
use bootleg_corpus::{generate_corpus, CorpusConfig};
use bootleg_kb::{generate as gen_kb, EntityId, KbConfig};
use bootleg_serve::{serve_requests, FallbackChain, ModelTier, PredictorTier, ServeConfig, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a deliberately hostile example: every field is sampled from a
/// range that straddles the valid/invalid boundary, so the mix contains
/// well-formed requests, subtly broken ones, and outright garbage.
fn hostile_example(rng: &mut StdRng, vocab: usize, n_entities: usize) -> Example {
    let n_tokens = rng.gen_range(0usize..12);
    // Token ids up to 2x the vocab: roughly half the examples carry at
    // least one out-of-vocab token.
    let tokens: Vec<u32> = (0..n_tokens).map(|_| rng.gen_range(0..(vocab as u32 * 2))).collect();
    let n_mentions = rng.gen_range(0usize..4);
    let mentions = (0..n_mentions)
        .map(|_| {
            let first = rng.gen_range(0usize..14);
            let last = rng.gen_range(0usize..14);
            let n_cands = rng.gen_range(0usize..4);
            let candidates = (0..n_cands)
                .map(|_| {
                    // Ids spanning the KB, just past it, and u32::MAX.
                    match rng.gen_range(0u8..4) {
                        0..=1 => EntityId(rng.gen_range(0..n_entities as u32)),
                        2 => EntityId(rng.gen_range(0..(n_entities as u32 * 2))),
                        _ => EntityId(u32::MAX - rng.gen_range(0..3)),
                    }
                })
                .collect();
            let gold = rng.gen_range(0u32..6);
            ExMention { first, last, candidates, gold: (gold < 4).then_some(gold) }
        })
        .collect();
    Example::inference(tokens, mentions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn hostile_batches_never_panic_and_always_terminate(seed in 0u64..10_000, workers in 1usize..5) {
        let kb = gen_kb(&KbConfig { n_entities: 200, seed: 77, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 30, seed: 77, ..CorpusConfig::default() });
        let counts = bootleg_corpus::stats::entity_counts(&c.train, true);
        let model = BootlegModel::new(&kb, &c.vocab, &counts, BootlegConfig::default());
        let tier0 = ModelTier::new(&model, &kb);
        let limits = tier0.limits();
        let chain = FallbackChain::new()
            .tier(tier0)
            .tier(PredictorTier::new("prior", PopularityPrior));

        let mut rng = StdRng::seed_from_u64(seed);
        let reqs: Vec<Example> = (0..24)
            .map(|_| hostile_example(&mut rng, limits.vocab_size, limits.n_entities))
            .collect();

        let cfg = ServeConfig::default().with_workers(workers).with_queue_cap(reqs.len());
        // If any panic escaped the serving layer, this call would unwind or
        // a worker would die and a request would be lost (serve_requests
        // panics on a missing outcome). Neither may happen.
        let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
        prop_assert_eq!(outcomes.len(), reqs.len());

        for (idx, outcome) in outcomes.iter().enumerate() {
            let valid = reqs[idx].validate(&limits).is_ok();
            match outcome {
                Ok(resp) => {
                    prop_assert!(valid, "invalid request {idx} must not reach a tier");
                    prop_assert_eq!(resp.predictions.len(), reqs[idx].mentions.len());
                }
                Err(ServeError::Rejected(_)) => {
                    prop_assert!(!valid, "valid request {idx} must not be rejected");
                }
                other => panic!(
                    "request {idx} must be answered or rejected, got {other:?} (valid={valid})"
                ),
            }
        }
    }

    #[test]
    fn every_valid_hostile_example_is_answered_by_some_tier(seed in 0u64..10_000) {
        // Same property through the chain directly (no queue): a valid but
        // weird example always gets an answer, even when the primary tier
        // panics internally on it — the prior tier has no preconditions
        // beyond validation.
        let kb = gen_kb(&KbConfig { n_entities: 200, seed: 78, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 30, seed: 78, ..CorpusConfig::default() });
        let counts = bootleg_corpus::stats::entity_counts(&c.train, true);
        let model = BootlegModel::new(&kb, &c.vocab, &counts, BootlegConfig::default());
        let tier0 = ModelTier::new(&model, &kb);
        let limits = tier0.limits();
        let chain = FallbackChain::new()
            .tier(tier0)
            .tier(PredictorTier::new("prior", PopularityPrior));

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        for _ in 0..16 {
            // Valid by construction, but arbitrary: single-token sentences,
            // overlapping spans, duplicate candidates, goldless mentions —
            // shapes no corpus generator would emit.
            let n_tokens = rng.gen_range(1usize..12);
            let tokens: Vec<u32> =
                (0..n_tokens).map(|_| rng.gen_range(0..limits.vocab_size as u32)).collect();
            let mentions: Vec<ExMention> = (0..rng.gen_range(1usize..4))
                .map(|_| {
                    let first = rng.gen_range(0..n_tokens);
                    let last = rng.gen_range(first..n_tokens);
                    let n_cands = rng.gen_range(1usize..4);
                    let candidates: Vec<EntityId> = (0..n_cands)
                        .map(|_| EntityId(rng.gen_range(0..limits.n_entities as u32)))
                        .collect();
                    let gold = rng.gen_range(0..n_cands as u32 + 1);
                    ExMention { first, last, candidates, gold: (gold < n_cands as u32).then_some(gold) }
                })
                .collect();
            let ex = Example::inference(tokens, mentions);
            prop_assert_eq!(ex.validate(&limits), Ok(()));
            let cx = bootleg_serve::RequestCx::new(1, bootleg_serve::Deadline::none());
            let resp = chain.predict(&ex, &cx).expect("valid example must be answered");
            prop_assert_eq!(resp.predictions.len(), ex.mentions.len());
        }
    }
}
