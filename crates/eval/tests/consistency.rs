//! Cross-checks between the evaluation views: slice totals must partition,
//! curve totals must match, and metrics must be bounded.

use bootleg_core::Example;
use bootleg_corpus::{generate_corpus, CorpusConfig};
use bootleg_eval::slices::{evaluate_slices, f1_by_count_bucket};
use bootleg_eval::{error_analysis, pattern_slices};
use bootleg_kb::{generate as gen_kb, KbConfig};

fn setup() -> (bootleg_kb::KnowledgeBase, bootleg_corpus::Corpus, std::collections::HashMap<bootleg_kb::EntityId, u32>) {
    let kb = gen_kb(&KbConfig { n_entities: 600, seed: 211, ..KbConfig::default() });
    let c = generate_corpus(&kb, &CorpusConfig { n_pages: 200, seed: 211, ..CorpusConfig::default() });
    let counts = bootleg_corpus::stats::entity_counts(&c.train, true);
    (kb, c, counts)
}

#[test]
fn slices_partition_all_mentions() {
    let (_, c, counts) = setup();
    let r = evaluate_slices(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    assert_eq!(
        r.all.gold,
        r.head.gold + r.torso.gold + r.tail.gold + r.unseen.gold,
        "popularity slices must partition the evaluable mentions"
    );
    assert_eq!(
        r.all.correct,
        r.head.correct + r.torso.correct + r.tail.correct + r.unseen.correct
    );
}

#[test]
fn curve_partitions_match_slices() {
    let (_, c, counts) = setup();
    let slices = evaluate_slices(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let curve = f1_by_count_bucket(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let curve_total: usize = curve.iter().map(|p| p.prf.gold).sum();
    assert_eq!(curve_total, slices.all.gold);
    // The 0-occurrence bucket equals the unseen slice exactly.
    assert_eq!(curve[0].prf.gold, slices.unseen.gold);
    assert_eq!(curve[0].prf.correct, slices.unseen.correct);
}

#[test]
fn prior_predictor_beats_random_on_all() {
    let (_, c, counts) = setup();
    let prior = evaluate_slices(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    // Predict the LAST candidate (anti-prior) — must be no better than prior
    // overall, since candidates are popularity-ranked and popularity-sampled.
    let anti = evaluate_slices(&c.dev, &counts, |ex: &Example| {
        ex.mentions.iter().map(|m| m.candidates.len() - 1).collect()
    });
    assert!(prior.all.f1() > anti.all.f1());
}

#[test]
fn error_analysis_counts_complement_accuracy() {
    let (kb, c, counts) = setup();
    let slices = evaluate_slices(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let buckets = error_analysis(&kb, &c.vocab, &c.dev, |ex: &Example| vec![0; ex.mentions.len()], 0);
    assert_eq!(buckets.total_mentions, slices.all.gold);
    assert_eq!(buckets.total_errors, slices.all.gold - slices.all.correct);
}

#[test]
fn pattern_slices_bounded_by_population() {
    let (kb, c, counts) = setup();
    let report =
        pattern_slices(&kb, &c.vocab, &c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let all = evaluate_slices(&c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
    for (p, (overall, tail)) in &report.per_pattern {
        assert!(
            overall.gold <= all.all.gold,
            "pattern {p:?} slice cannot exceed the population"
        );
        assert!(tail.gold <= overall.gold, "tail sub-slice within the slice");
        assert!(overall.f1() <= 100.0 + 1e-9);
    }
}

#[test]
fn perfect_predictor_scores_100_everywhere() {
    let (_, c, counts) = setup();
    let r = evaluate_slices(&c.dev, &counts, |ex: &Example| {
        ex.mentions.iter().map(|m| m.gold.expect("gold") as usize).collect()
    });
    assert!((r.all.f1() - 100.0).abs() < 1e-9);
    for prf in [r.head, r.torso, r.tail, r.unseen] {
        if prf.gold > 0 {
            assert!((prf.f1() - 100.0).abs() < 1e-9);
        }
    }
}
