//! Property tests for the checkpoint container: serialization is a bijection
//! on valid byte strings, and every corruption is detected.

use bootleg_tensor::checkpoint::{
    atomic_write, decode_tensors, decode_u64s, encode_tensors, encode_u64s, Checkpoint,
    CheckpointManager,
};
use bootleg_tensor::Tensor;
use proptest::prelude::*;

fn checkpoint_from(step: u64, sections: &[(u8, Vec<u8>)]) -> Checkpoint {
    let mut c = Checkpoint::new(step);
    for (tag, payload) in sections {
        c.put(&format!("section-{tag}"), payload.clone());
    }
    c
}

proptest! {
    #[test]
    fn save_load_save_is_byte_identical(
        step in 0u64..u64::MAX,
        sections in proptest::collection::vec(
            (0u8..32, proptest::collection::vec(0u8..=255, 0..200)),
            0..8,
        ),
    ) {
        let c = checkpoint_from(step, &sections);
        let bytes = c.to_bytes();
        let reloaded = Checkpoint::from_bytes(&bytes).expect("valid bytes parse");
        prop_assert_eq!(reloaded.step, c.step);
        // The round-tripped checkpoint must re-serialize to the exact same
        // bytes: save -> load -> save is the identity on the file.
        prop_assert_eq!(reloaded.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_byte_is_rejected(
        step in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255, 1..300),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut c = Checkpoint::new(step);
        c.put("data", payload);
        let mut bytes = c.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "flipping byte {} must fail the checksum", pos
        );
    }

    #[test]
    fn truncated_file_is_rejected(
        step in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255, 0..300),
        keep_frac in 0.0f64..1.0,
    ) {
        let mut c = Checkpoint::new(step);
        c.put("data", payload);
        let bytes = c.to_bytes();
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(
            Checkpoint::from_bytes(&bytes[..keep]).is_err(),
            "truncating {} -> {} bytes must be rejected", bytes.len(), keep
        );
    }

    #[test]
    fn tensor_payload_roundtrips(
        rows in 1usize..6,
        cols in 1usize..6,
        scale in -100.0f32..100.0,
    ) {
        let t = Tensor::new(
            vec![rows, cols],
            (0..rows * cols).map(|i| i as f32 * scale).collect(),
        );
        let bytes = encode_tensors(std::slice::from_ref(&t));
        let back = decode_tensors(&bytes).expect("decode");
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &t);
        prop_assert_eq!(encode_tensors(&back), bytes);
    }

    #[test]
    fn u64_payload_roundtrips(values in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let values_clone = values.clone();
        prop_assert_eq!(decode_u64s(&encode_u64s(&values)).expect("decode"), values_clone);
    }
}

#[test]
fn atomic_write_replaces_existing_file_completely() {
    let dir = std::env::temp_dir().join(format!("bootleg_ckpt_props_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("f.bin");
    atomic_write(&path, &[1u8; 100]).expect("first write");
    atomic_write(&path, &[2u8; 10]).expect("second write");
    assert_eq!(std::fs::read(&path).expect("read"), vec![2u8; 10]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manager_survives_all_checkpoints_corrupt() {
    let dir = std::env::temp_dir().join(format!("bootleg_ckpt_allbad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mgr = CheckpointManager::new(&dir, 4).expect("mgr");
    for step in [1u64, 2, 3] {
        let mut c = Checkpoint::new(step);
        c.put("x", vec![0u8; 64]);
        let path = mgr.save(&c).expect("save");
        std::fs::write(&path, b"shredded").expect("shred");
    }
    let loaded = mgr.load_latest_valid().expect("io");
    assert!(loaded.is_none(), "no valid checkpoint must mean None, not a panic");
    std::fs::remove_dir_all(&dir).ok();
}
