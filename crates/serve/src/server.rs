//! The bounded-queue serving loop: admission control, load shedding, and
//! worker isolation.
//!
//! [`serve_requests`] drives a batch of requests through a
//! [`FallbackChain`] with a fixed worker pool and a bounded admission
//! queue. Every submitted request gets **exactly one** terminal
//! [`ServeOutcome`]:
//!
//! - invalid requests are **rejected** at admission ([`Example::validate`]),
//! - requests arriving while the queue is full are **shed**,
//! - admitted requests are answered by some tier of the chain, or fail with
//!   a typed [`ServeError`](crate::error::ServeError).
//!
//! Workers never die: tier panics are caught inside the chain, and a panic
//! escaping the chain itself (a serving bug) is converted to
//! [`ServeError::Internal`](crate::error::ServeError::Internal) by a final
//! `catch_unwind` around the whole request.

use crate::chain::FallbackChain;
use crate::error::{panic_message, ServeError, ServeOutcome};
use crate::tier::RequestCx;
use bootleg_core::fault::FaultPlan;
use bootleg_core::{Deadline, Example, ValidationLimits};
use bootleg_eval::Predictor;
use bootleg_kb::EntityId;
use bootleg_obs::{counter, gauge};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Serving-loop tuning.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admission-queue capacity; requests arriving beyond it are shed.
    pub queue_cap: usize,
    /// Per-request compute budget, stamped at admission. `None` = unlimited.
    pub deadline_ms: Option<u64>,
    /// Injected fault schedule (chaos tests); empty in production.
    pub chaos: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: default_workers(), queue_cap: 64, deadline_ms: None, chaos: FaultPlan::none() }
    }
}

fn default_workers() -> usize {
    std::env::var("BOOTLEG_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

impl ServeConfig {
    /// Reads `BOOTLEG_THREADS` (workers), `BOOTLEG_QUEUE_CAP` (default 64),
    /// and `BOOTLEG_DEADLINE_MS` (default unlimited).
    pub fn from_env() -> Self {
        let env_usize = |key: &str| {
            std::env::var(key).ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
        };
        Self {
            workers: default_workers(),
            queue_cap: env_usize("BOOTLEG_QUEUE_CAP").unwrap_or(64),
            deadline_ms: std::env::var("BOOTLEG_DEADLINE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&ms| ms > 0),
            chaos: FaultPlan::none(),
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the queue capacity.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the per-request deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Injects a fault schedule (chaos tests).
    pub fn with_chaos(mut self, chaos: FaultPlan) -> Self {
        self.chaos = chaos;
        self
    }

    fn deadline(&self) -> Deadline {
        self.deadline_ms.map_or(Deadline::none(), Deadline::after_ms)
    }
}

/// One queued unit of work: request index + its admission-stamped context.
struct Job {
    idx: usize,
    cx: RequestCx,
}

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (queue, producer done)
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Self { jobs: Mutex::new((VecDeque::new(), false)), ready: Condvar::new() }
    }

    /// Admits a job unless the queue is at `cap`; returns the observed depth
    /// on shed.
    fn try_push(&self, job: Job, cap: usize) -> Result<(), usize> {
        let mut guard = self.jobs.lock().expect("queue lock");
        if guard.0.len() >= cap {
            return Err(guard.0.len());
        }
        guard.0.push_back(job);
        gauge!("serve.queue_depth").set(guard.0.len() as f64);
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.jobs.lock().expect("queue lock").1 = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once the queue is drained and closed.
    fn pop(&self) -> Option<Job> {
        let mut guard = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = guard.0.pop_front() {
                gauge!("serve.queue_depth").set(guard.0.len() as f64);
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("queue lock");
        }
    }
}

/// Corrupts an admitted request in place — the `MalformedExample` fault.
/// Models payload corruption *past* admission control (bit rot, a buggy
/// proxy): the candidate id is pushed far outside the KB, so the model and
/// NED-Base tiers panic on the gather and the chain must degrade.
fn corrupt(ex: &Example) -> Example {
    let mut ex = ex.clone();
    if let Some(m) = ex.mentions.first_mut() {
        if let Some(c) = m.candidates.first_mut() {
            *c = EntityId(u32::MAX - 1);
        }
    }
    ex
}

/// Serves `requests` through `chain` with bounded admission. Returns one
/// [`ServeOutcome`] per request, in submission order. Sequence numbers are
/// 1-based submission indices — the key for `cfg.chaos` fault schedules.
pub fn serve_requests(
    chain: &FallbackChain<'_>,
    limits: &ValidationLimits,
    cfg: &ServeConfig,
    requests: &[Example],
) -> Vec<ServeOutcome> {
    let outcomes: Vec<OnceLock<ServeOutcome>> =
        (0..requests.len()).map(|_| OnceLock::new()).collect();
    let queue = Queue::new();

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    let outcome = run_one(chain, cfg, &requests[job.idx], &job.cx);
                    outcomes[job.idx]
                        .set(outcome)
                        .unwrap_or_else(|_| panic!("request {} answered twice", job.idx));
                }
            });
        }

        // Admission: validate, shed, or enqueue — in submission order.
        for (idx, ex) in requests.iter().enumerate() {
            let seq = idx as u64 + 1;
            if let Err(defect) = ex.validate(limits) {
                counter!("serve.rejected").inc();
                set_once(&outcomes[idx], Err(ServeError::Rejected(defect)), idx);
                continue;
            }
            let job = Job { idx, cx: RequestCx::new(seq, cfg.deadline()) };
            match queue.try_push(job, cfg.queue_cap) {
                Ok(()) => counter!("serve.admitted").inc(),
                Err(queue_depth) => {
                    counter!("serve.shed").inc();
                    set_once(&outcomes[idx], Err(ServeError::Shed { queue_depth }), idx);
                }
            }
        }
        queue.close();
    });

    outcomes
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.into_inner().unwrap_or_else(|| {
                panic!("request {idx} got no outcome (lost request)")
            })
        })
        .collect()
}

fn set_once(slot: &OnceLock<ServeOutcome>, outcome: ServeOutcome, idx: usize) {
    slot.set(outcome).unwrap_or_else(|_| panic!("request {idx} answered twice"));
}

fn run_one(
    chain: &FallbackChain<'_>,
    cfg: &ServeConfig,
    ex: &Example,
    cx: &RequestCx,
) -> ServeOutcome {
    let malformed = cfg.chaos.malformed_example_at(cx.seq);
    let result = catch_unwind(AssertUnwindSafe(|| {
        if malformed {
            chain.predict(&corrupt(ex), cx)
        } else {
            chain.predict(ex, cx)
        }
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            counter!("serve.internal_panics").inc();
            Err(ServeError::Internal { message: panic_message(payload.as_ref()) })
        }
    }
}

/// Adapts a [`FallbackChain`] into an infallible [`Predictor`] so the
/// resilient path plugs into every evaluator and benchmark unchanged.
///
/// Valid requests flow through the chain (tier 0 answers fault-free, so
/// outputs are bit-identical to a direct [`Predictor`]); a request the
/// chain cannot answer at all falls back to candidate 0 per mention — the
/// popularity-ordered prior, the same "most popular candidate" answer the
/// last chain tier would give.
pub struct ResilientPredictor<'a> {
    chain: &'a FallbackChain<'a>,
    limits: ValidationLimits,
    deadline_ms: Option<u64>,
    seq: AtomicU64,
}

impl<'a> ResilientPredictor<'a> {
    /// Wraps a chain for predictor-style use.
    pub fn new(chain: &'a FallbackChain<'a>, limits: ValidationLimits) -> Self {
        Self { chain, limits, deadline_ms: None, seq: AtomicU64::new(0) }
    }

    /// Applies a per-request deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }
}

impl Predictor for ResilientPredictor<'_> {
    fn predict(&self, ex: &Example) -> Vec<usize> {
        let fallback = || vec![0; ex.mentions.len()];
        if ex.validate(&self.limits).is_err() {
            return fallback();
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let deadline = self.deadline_ms.map_or(Deadline::none(), Deadline::after_ms);
        match self.chain.predict(ex, &RequestCx::new(seq, deadline)) {
            Ok(resp) => resp.predictions,
            Err(_) => fallback(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::clock::VirtualClock;
    use crate::tier::PredictorTier;
    use bootleg_core::ExMention;
    use std::sync::Arc;

    fn limits() -> ValidationLimits {
        ValidationLimits { n_entities: 100, vocab_size: 100, max_tokens: 64 }
    }

    fn example() -> Example {
        Example::inference(
            vec![0, 1],
            vec![ExMention {
                first: 0,
                last: 0,
                candidates: vec![EntityId(0), EntityId(1)],
                gold: None,
            }],
        )
    }

    fn echo_chain() -> FallbackChain<'static> {
        FallbackChain::with_clock(Arc::new(VirtualClock::new()), BreakerConfig::default())
            .tier(PredictorTier::new("echo", |e: &Example| vec![1; e.mentions.len()]))
    }

    #[test]
    fn every_request_gets_exactly_one_outcome() {
        let chain = echo_chain();
        let reqs: Vec<Example> = (0..50).map(|_| example()).collect();
        let cfg = ServeConfig::default().with_workers(4).with_queue_cap(8);
        let outcomes = serve_requests(&chain, &limits(), &cfg, &reqs);
        assert_eq!(outcomes.len(), 50);
        for out in &outcomes {
            match out {
                Ok(resp) => assert_eq!(resp.predictions, vec![1]),
                Err(ServeError::Shed { .. }) => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let chain = echo_chain();
        let mut bad = example();
        bad.mentions.clear();
        let cfg = ServeConfig::default().with_workers(2);
        let outcomes = serve_requests(&chain, &limits(), &cfg, &[bad, example()]);
        assert!(matches!(outcomes[0], Err(ServeError::Rejected(_))));
        assert!(outcomes[1].is_ok());
    }

    #[test]
    fn config_from_env_reads_all_knobs() {
        std::env::set_var("BOOTLEG_QUEUE_CAP", "7");
        std::env::set_var("BOOTLEG_DEADLINE_MS", "123");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.queue_cap, 7);
        assert_eq!(cfg.deadline_ms, Some(123));
        std::env::remove_var("BOOTLEG_QUEUE_CAP");
        std::env::remove_var("BOOTLEG_DEADLINE_MS");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.queue_cap, 64);
        assert_eq!(cfg.deadline_ms, None);
    }

    #[test]
    fn resilient_predictor_answers_everything() {
        let chain = echo_chain();
        let p = ResilientPredictor::new(&chain, limits());
        assert_eq!(p.predict(&example()), vec![1]);
        let mut bad = example();
        bad.tokens[0] = 1_000; // outside vocab → validate fails → fallback
        assert_eq!(p.predict(&bad), vec![0]);
    }
}
