//! Reasoning-pattern slices (§5): representative validation slices that
//! exemplify each pattern, classified from *data properties* (not from the
//! generator's bookkeeping), exactly as the paper mines them:
//!
//! * **Entity** — the gold entity has no relation or type signals available.
//! * **Type consistency** — the sentence contains a list of ≥3 sequential
//!   distinct gold entities all sharing at least one type.
//! * **KG relation** — the sentence's gold entities are connected by a known
//!   relation in the knowledge graph.
//! * **Type affordance** — the sentence contains keywords afforded by a type
//!   of the gold entity (the paper mines affordance keywords by TF-IDF; our
//!   KB's affordance vocabulary plays that role, and we verify the TF-IDF
//!   mining recovers it in `tfidf`).

use crate::metrics::Prf;
use crate::predictor::Predictor;
use bootleg_core::Example;
use bootleg_corpus::{Pattern, Sentence, Vocab};
use bootleg_kb::stats::PopularitySlice;
use bootleg_kb::{EntityId, KnowledgeBase, TypeId};
use std::collections::{HashMap, HashSet};

/// Overall/tail PRF per reasoning-pattern slice (Table 7 rows).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternSliceReport {
    /// `(overall, tail)` per pattern.
    pub per_pattern: HashMap<Pattern, (Prf, Prf)>,
}

impl PatternSliceReport {
    /// Accumulates another report's counts into this one.
    pub fn merge(&mut self, other: &PatternSliceReport) {
        for (pat, (overall, tail)) in &other.per_pattern {
            let entry = self.per_pattern.entry(*pat).or_default();
            entry.0.merge(*overall);
            entry.1.merge(*tail);
        }
    }
}

/// Classifies which pattern slices a sentence belongs to, from data
/// properties only. A sentence can exemplify several patterns.
pub fn classify(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    affordance_index: &HashMap<u32, HashSet<TypeId>>,
    s: &Sentence,
) -> Vec<Pattern> {
    let golds: Vec<EntityId> = s.anchor_mentions().map(|m| m.gold).collect();
    let mut out = Vec::new();

    // Entity: a gold with no structure at all.
    if golds.iter().any(|&g| kb.entity(g).structureless()) {
        out.push(Pattern::Memorization);
    }

    // Consistency: >= 3 distinct golds sharing a type.
    let distinct: Vec<EntityId> = {
        let mut seen = HashSet::new();
        golds.iter().copied().filter(|g| seen.insert(g.0)).collect()
    };
    if distinct.len() >= 3 {
        let shared = distinct
            .windows(2)
            .all(|w| kb.share_type(w[0], w[1]));
        if shared {
            out.push(Pattern::Consistency);
        }
    }

    // KG relation: two golds connected in the KG.
    let connected = (0..golds.len()).any(|i| {
        (i + 1..golds.len()).any(|j| kb.connected(golds[i], golds[j]).is_some())
    });
    if connected {
        out.push(Pattern::KgRelation);
    }

    // Affordance: a token afforded by one of the gold's types.
    let _ = vocab; // tokens are already ids; the index is keyed by token id
    let afforded = s.tokens.iter().any(|t| {
        affordance_index.get(t).is_some_and(|types| {
            golds.iter().any(|&g| kb.entity(g).types.iter().any(|ty| types.contains(ty)))
        })
    });
    if afforded {
        out.push(Pattern::Affordance);
    }
    out
}

/// Builds the affordance-keyword index: token id → types affording it.
pub fn affordance_index(kb: &KnowledgeBase, vocab: &Vocab) -> HashMap<u32, HashSet<TypeId>> {
    let mut idx: HashMap<u32, HashSet<TypeId>> = HashMap::new();
    for t in &kb.types {
        for a in &t.affordance_tokens {
            idx.entry(vocab.id(a)).or_default().insert(t.id);
        }
    }
    idx
}

/// Mines affordance keywords per type by TF-IDF over training sentences (the
/// paper's §5 method: top keywords by TF-IDF over examples with that type).
/// Returns type → top-`k` token ids.
pub fn mine_affordance_tfidf(
    kb: &KnowledgeBase,
    sentences: &[Sentence],
    k: usize,
) -> HashMap<TypeId, Vec<u32>> {
    // Document = concatenation of sentences whose gold entities carry a type.
    let mut tf: HashMap<TypeId, HashMap<u32, u32>> = HashMap::new();
    let mut df: HashMap<u32, u32> = HashMap::new();
    let mut n_docs = 0u32;
    for s in sentences {
        n_docs += 1;
        let mut seen = HashSet::new();
        for &t in &s.tokens {
            if seen.insert(t) {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        for m in s.anchor_mentions() {
            for &ty in &kb.entity(m.gold).types {
                let counts = tf.entry(ty).or_default();
                for &t in &s.tokens {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
    }
    tf.into_iter()
        .map(|(ty, counts)| {
            let mut scored: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(tok, c)| {
                    let idf = ((n_docs as f64 + 1.0) / (*df.get(&tok).unwrap_or(&1) as f64 + 1.0))
                        .ln();
                    (tok, c as f64 * idf)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite tf-idf"));
            (ty, scored.into_iter().take(k).map(|(t, _)| t).collect())
        })
        .collect()
}

/// Evaluates a predictor over the pattern slices, reporting Overall/Tail PRF
/// per pattern (Table 7).
pub fn pattern_slices(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    sentences: &[Sentence],
    counts: &HashMap<EntityId, u32>,
    predict: impl Predictor,
) -> PatternSliceReport {
    let idx = affordance_index(kb, vocab);
    let mut report = empty_pattern_report();
    for s in sentences {
        report.merge(&sentence_patterns(kb, vocab, &idx, counts, s, &predict));
    }
    report
}

/// A report with every pattern present (zero counts).
pub(crate) fn empty_pattern_report() -> PatternSliceReport {
    let mut report = PatternSliceReport::default();
    for p in Pattern::ALL {
        report.per_pattern.insert(p, (Prf::default(), Prf::default()));
    }
    report
}

/// One sentence's contribution to the Table-7 report — the unit of work the
/// parallel driver fans out. Only touched patterns appear in the result.
pub(crate) fn sentence_patterns<P: Predictor + ?Sized>(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    idx: &HashMap<u32, HashSet<TypeId>>,
    counts: &HashMap<EntityId, u32>,
    s: &Sentence,
    predict: &P,
) -> PatternSliceReport {
    let mut report = PatternSliceReport::default();
    let Some(ex) = Example::evaluation(s) else { return report };
    let slices = classify(kb, vocab, idx, s);
    if slices.is_empty() {
        return report;
    }
    let preds = predict.predict(&ex);
    for (m, &p) in ex.mentions.iter().zip(&preds) {
        let gi = m.gold.expect("gold") as usize;
        let gold_entity = m.candidates[gi];
        let hit = usize::from(p == gi);
        let is_tail = matches!(
            PopularitySlice::of(*counts.get(&gold_entity).unwrap_or(&0)),
            PopularitySlice::Tail | PopularitySlice::Unseen
        );
        for pat in &slices {
            let entry = report.per_pattern.entry(*pat).or_default();
            entry.0.merge(Prf::closed(hit, 1));
            if is_tail {
                entry.1.merge(Prf::closed(hit, 1));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_corpus::{generate_corpus, CorpusConfig};
    use bootleg_kb::{generate as gen_kb, KbConfig};

    fn setup() -> (KnowledgeBase, bootleg_corpus::Corpus) {
        let kb = gen_kb(&KbConfig { n_entities: 800, seed: 91, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 250, seed: 91, ..CorpusConfig::default() });
        (kb, c)
    }

    #[test]
    fn classifier_matches_generator_labels() {
        // Data-property classification should usually agree with the
        // generator's pattern bookkeeping on single-pattern sentences.
        let (kb, c) = setup();
        let idx = affordance_index(&kb, &c.vocab);
        let mut agree = 0;
        let mut total = 0;
        for s in &c.dev {
            // Sentences whose pattern-carrying mention was rendered as an
            // unlabeled pronoun/alt-name are unknowable from data properties
            // alone; the classifier only sees anchor golds.
            if s.anchor_mentions().count() != s.mentions.len() {
                continue;
            }
            let slices = classify(&kb, &c.vocab, &idx, s);
            match s.pattern {
                Pattern::Affordance | Pattern::KgRelation | Pattern::Consistency => {
                    total += 1;
                    if slices.contains(&s.pattern) {
                        agree += 1;
                    }
                }
                Pattern::Memorization => {}
            }
        }
        assert!(total > 50);
        assert!(
            agree as f64 / total as f64 > 0.8,
            "classifier agreement {agree}/{total}"
        );
    }

    #[test]
    fn pattern_slice_report_covers_patterns() {
        let (kb, c) = setup();
        let counts = bootleg_corpus::stats::entity_counts(&c.train, true);
        let report =
            pattern_slices(&kb, &c.vocab, &c.dev, &counts, |ex: &Example| vec![0; ex.mentions.len()]);
        let aff = report.per_pattern[&Pattern::Affordance].0;
        assert!(aff.gold > 20, "affordance slice should be populated, got {}", aff.gold);
        let kg = report.per_pattern[&Pattern::KgRelation].0;
        assert!(kg.gold > 5, "kg slice should be populated, got {}", kg.gold);
    }

    #[test]
    fn tfidf_recovers_affordance_vocabulary() {
        // §5: the mined TF-IDF keywords should overlap the KB's true
        // affordance vocabulary for frequent types.
        let (kb, c) = setup();
        let mined = mine_affordance_tfidf(&kb, &c.train, 15);
        let mut hits = 0;
        let mut checked = 0;
        for (ty, tokens) in &mined {
            let info = kb.type_info(*ty);
            let truth: HashSet<u32> =
                info.affordance_tokens.iter().map(|a| c.vocab.id(a)).collect();
            if truth.is_empty() || tokens.len() < 5 {
                continue;
            }
            checked += 1;
            if tokens.iter().any(|t| truth.contains(t)) {
                hits += 1;
            }
        }
        assert!(checked > 10, "checked {checked}");
        assert!(
            hits as f64 / checked as f64 > 0.5,
            "TF-IDF should recover affordance keywords: {hits}/{checked}"
        );
    }
}
