//! Typed identifiers for knowledge-base objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as $inner)
            }
        }
    };
}

id_type!(
    /// Identifier of an entity in the knowledge base.
    EntityId,
    u32
);
id_type!(
    /// Identifier of a fine-grained (Wikidata-style) type.
    TypeId,
    u32
);
id_type!(
    /// Identifier of a relation predicate.
    RelationId,
    u32
);
id_type!(
    /// Identifier of an alias (surface form shared by candidate entities).
    AliasId,
    u32
);

/// The five coarse HYENA-style types plus `Misc` (Appendix B uses person,
/// location, organization, artifact, event, miscellaneous).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoarseType {
    /// People (receive gender and name aliases).
    Person,
    /// Places.
    Location,
    /// Organizations and companies.
    Organization,
    /// Artifacts, products, works.
    Artifact,
    /// Events (receive years in titles).
    Event,
    /// Everything else.
    Misc,
}

impl CoarseType {
    /// All coarse types, in a stable order used for the type-prediction head.
    pub const ALL: [CoarseType; 6] = [
        CoarseType::Person,
        CoarseType::Location,
        CoarseType::Organization,
        CoarseType::Artifact,
        CoarseType::Event,
        CoarseType::Misc,
    ];

    /// Stable index of this coarse type in [`CoarseType::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("coarse type in ALL")
    }
}

/// Gender of a person entity, used by the pronoun weak-labeling heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gender {
    /// Referred to by "he"/"him"/"his".
    Male,
    /// Referred to by "she"/"her".
    Female,
}

impl Gender {
    /// The pronoun token string associated with this gender.
    pub fn pronoun(self) -> &'static str {
        match self {
            Gender::Male => "he",
            Gender::Female => "she",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_roundtrip() {
        let e = EntityId::from(42usize);
        assert_eq!(e.idx(), 42);
        assert_eq!(format!("{e:?}"), "EntityId(42)");
    }

    #[test]
    fn coarse_indices_are_unique_and_dense() {
        let idxs: HashSet<usize> = CoarseType::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idxs.len(), 6);
        assert!(idxs.iter().all(|&i| i < 6));
    }

    #[test]
    fn pronouns() {
        assert_eq!(Gender::Male.pronoun(), "he");
        assert_eq!(Gender::Female.pronoun(), "she");
    }
}
