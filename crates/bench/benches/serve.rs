//! Serving-layer overhead bench: the resilient path (admission validation,
//! deadline stamping, breaker bookkeeping, per-tier `catch_unwind`) versus
//! calling the model directly, fault-free, recorded to `results/serve.json`.
//!
//! PR acceptance: fault-free serving is **bit-identical** to direct
//! `Predictor::predict` and costs **< 2%** latency on whole-corpus
//! evaluation. Same self-contained harness as `perf.rs`: min over
//! *interleaved* reps on a 1-thread pool (timing one arm fully and then
//! the other would charge clock drift to whichever ran second — drift on
//! this class of box is the same order as the quantity under test), and
//! the model is [`BootlegConfig::serving`]-sized so the armor is measured
//! against deployment-scale forward work, not a unit-test toy where fixed
//! microsecond costs dominate any ratio. `BOOTLEG_PERF_SMOKE=1` selects
//! the fast CI configuration (relaxed threshold — the workload is too
//! short for a stable percent-level number).

use bootleg_baselines::PopularityPrior;
use bootleg_bench::{Results, Workbench};
use bootleg_core::{BootlegConfig, BootlegModel, Example};
use bootleg_corpus::CorpusConfig;
use bootleg_eval::{evaluate_slices, BootlegPredictor, Predictor};
use bootleg_kb::KbConfig;
use bootleg_pool::{with_pool, ThreadPool};
use bootleg_serve::{FallbackChain, ModelTier, PredictorTier, ResilientPredictor};
use std::hint::black_box;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var("BOOTLEG_PERF_SMOKE").map(|v| v != "0").unwrap_or(false)
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn bench_serve_overhead(results: &mut Results) {
    let smoke = smoke_mode();
    let (n_entities, n_pages, reps) =
        if smoke { (600usize, 120usize, 3usize) } else { (2_000, 600, 7) };
    let wb = Workbench::build(
        KbConfig { n_entities, seed: 51, ..KbConfig::default() },
        CorpusConfig { n_pages, seed: 52, ..CorpusConfig::default() },
        true,
    );
    let model = BootlegModel::new(
        &wb.kb,
        &wb.corpus.vocab,
        &wb.counts,
        BootlegConfig::default().serving(),
    );
    let direct = BootlegPredictor::new(&model, &wb.kb);
    let tier0 = ModelTier::new(&model, &wb.kb);
    let limits = tier0.limits();
    // Slice counts attached: the resilient arm pays for the full telemetry
    // plane (request records, sliding windows, tail-slice counters), so the
    // <2% budget is measured telemetry-on.
    let chain = FallbackChain::new()
        .with_slice_counts(&wb.counts)
        .tier(tier0)
        .tier(PredictorTier::new("prior", PopularityPrior));
    let resilient = ResilientPredictor::new(&chain, limits);
    let via_serve = |ex: &Example| resilient.predict(ex);
    let dev = &wb.corpus.dev;
    println!("serve workload: {} dev sentences, {} entities", dev.len(), wb.kb.num_entities());

    let pool = ThreadPool::new(1);
    let (direct_secs, serve_secs, report_direct, report_serve) = with_pool(&pool, || {
        let report_direct = evaluate_slices(dev, &wb.counts, direct); // warm-up
        let report_serve = evaluate_slices(dev, &wb.counts, via_serve); // warm-up
        // Interleaved reps — see the module docs.
        let (mut direct_secs, mut serve_secs) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t = Instant::now();
            black_box(evaluate_slices(dev, &wb.counts, direct));
            direct_secs = direct_secs.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            black_box(evaluate_slices(dev, &wb.counts, via_serve));
            serve_secs = serve_secs.min(t.elapsed().as_secs_f64());
        }
        (direct_secs, serve_secs, report_direct, report_serve)
    });

    // Fault-free, tier 0 answers everything: the serving armor must be
    // invisible in the outputs, not just cheap.
    assert_eq!(
        report_direct, report_serve,
        "fault-free serving must be bit-identical to direct inference"
    );

    let overhead = serve_secs / direct_secs.max(1e-12) - 1.0;
    println!("serve/eval_direct                            {}", fmt_time(direct_secs));
    println!("serve/eval_resilient                         {}", fmt_time(serve_secs));
    println!("serve/overhead: {:.2}% (target < 2%)", overhead * 100.0);
    if smoke {
        assert!(overhead < 0.25, "serve overhead {:.2}% even in smoke mode", overhead * 100.0);
    } else {
        assert!(
            overhead < 0.02,
            "serve overhead {:.2}% exceeds the 2% acceptance budget",
            overhead * 100.0
        );
    }
    // The resilient arm ran with telemetry recording live; the request
    // rings must have retained records, or the budget above measured an
    // accidentally-disabled plane.
    let recent = bootleg_obs::reqtrace::recent();
    assert!(!recent.is_empty(), "telemetry-on bench left no request records");
    assert!(recent.iter().all(|r| !r.slice.is_empty()), "slice counts were attached");
    results.set("serve_eval_direct_secs", direct_secs);
    results.set("serve_eval_resilient_secs", serve_secs);
    results.set("serve_overhead_frac", overhead);
    results.set("serve_metrics_identical", true);
    results.set("serve_telemetry_on", true);
    results.set("serve_sentences", dev.len());
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        println!("serve: skipped (run via `cargo bench` to measure)");
        return;
    }
    let mut results = Results::new("serve");
    results.set("smoke", smoke_mode());
    bench_serve_overhead(&mut results);
    results.write().expect("write results/serve.json");
}
