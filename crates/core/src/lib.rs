//! # bootleg-core
//!
//! The Bootleg model (CIDR 2021, §3): a self-supervised named entity
//! disambiguation system explicitly grounded in four reasoning patterns.
//!
//! The architecture follows the paper exactly:
//!
//! * **Signal encoding (§3.1)** — each candidate entity is represented by the
//!   concatenation of its entity embedding `uₑ`, an additive-attention pool
//!   `tₑ` over its type embeddings (plus a predicted coarse mention type,
//!   Appendix A), and an additive-attention pool `rₑ` over its relation
//!   embeddings, projected by an MLP: `e = MLP([uₑ, tₑ, rₑ])`. The candidate
//!   matrix **E** gets the mention's first/last-token positional encoding
//!   added (Appendix A).
//! * **Modules (§3.2)** — per layer:
//!   `E′ = MHA(E, W) + MHA(E)` (Phrase2Ent cross-attention to the sentence
//!   matrix **W** and Ent2Ent self-attention), then for each KG adjacency
//!   `E_k = softmax(K + wI) E′ + E′` (KG2Ent with learned scalar `w`);
//!   multiple KG modules average on the forward path.
//! * **Scoring** — `S = max(E_k vᵀ, E′ vᵀ)`, an ensemble that lets
//!   collective (KG) reasoning win only when it is the stronger prediction.
//! * **2-D regularization (§3.3.1)** — the whole entity embedding is zeroed
//!   with probability `p(e)` before the MLP, where `p` follows one of the
//!   Appendix-B schemes (fixed, Pop, InvPop{Log,Pow,Lin}).
//! * **Training** — Adam, cross-entropy over candidate scores, plus the
//!   coarse type-prediction loss (Appendix A).
//! * **Compression (§4.4)** — keep the top-k% entity embeddings by training
//!   popularity and map the rest to one shared vector.

pub mod batch;
pub mod compression;
pub mod config;
pub mod cooccur;
pub mod entitycache;
pub mod example;
pub mod explain;
pub mod fault;
pub mod forward;
pub mod frozen;
pub mod model;
pub mod regularization;
pub mod size;
pub mod train;

pub use compression::compress_entity_embeddings;
pub use config::{BootlegConfig, ModelVariant};
pub use entitycache::CachePolicy;
pub use example::{ExMention, Example, ExampleDefect, ValidationLimits};
pub use explain::{Explanation, Signal};
pub use forward::{Deadline, ForwardInterrupted, ForwardOptions, ForwardOutput};
pub use frozen::{
    artifact_from_env, freeze, freeze_to_path, thaw_from_bytes, thaw_from_path, FrozenBundle,
    FrozenError,
};
pub use model::BootlegModel;
pub use regularization::RegScheme;
pub use fault::{corrupt_file, CorruptionMode, Fault, FaultPlan};
pub use size::SizeReport;
pub use train::{
    train, train_resumable, AnomalyConfig, CheckpointConfig, RecoveryEvent, RecoveryKind,
    TrainConfig, TrainOutcome, TrainReport, TrainStatus,
};
