//! Chaos tests: injected panics, stalls, and payload corruption against the
//! full serving stack (real model, real fallback tiers, real worker pool).
//!
//! The invariant under test, at any worker count (CI runs the suite at
//! `BOOTLEG_THREADS=2` and `=8`): **every submitted request gets exactly
//! one terminal outcome** — no hangs, no lost requests, no worker deaths —
//! and fault-free traffic is bit-identical to calling the model directly.

use bootleg_baselines::{NedBase, NedBaseConfig, PopularityPrior};
use bootleg_core::fault::{Fault, FaultPlan};
use bootleg_core::{BootlegConfig, BootlegModel, Example};
use bootleg_corpus::{generate_corpus, Corpus, CorpusConfig};
use bootleg_eval::{BootlegPredictor, Predictor};
use bootleg_kb::{generate as gen_kb, KbConfig, KnowledgeBase};
use bootleg_serve::{
    serve_requests, FallbackChain, ModelTier, PredictorTier, ServeConfig, ServeError,
};

fn setup() -> (KnowledgeBase, Corpus, BootlegModel, NedBase) {
    let kb = gen_kb(&KbConfig { n_entities: 300, seed: 191, ..KbConfig::default() });
    let c = generate_corpus(&kb, &CorpusConfig { n_pages: 60, seed: 191, ..CorpusConfig::default() });
    let counts = bootleg_corpus::stats::entity_counts(&c.train, true);
    let model = BootlegModel::new(&kb, &c.vocab, &counts, BootlegConfig::default());
    let ned = NedBase::new(&kb, &c.vocab, NedBaseConfig::default());
    (kb, c, model, ned)
}

fn requests(c: &Corpus, n: usize) -> Vec<Example> {
    let mut reqs: Vec<Example> = c
        .dev
        .iter()
        .chain(c.train.iter())
        .filter_map(Example::evaluation)
        .take(n)
        .collect();
    assert!(reqs.len() >= n.min(24), "corpus too small for the chaos test");
    reqs.truncate(n);
    reqs
}

fn chain<'a>(
    model: &'a BootlegModel,
    kb: &'a KnowledgeBase,
    ned: &'a NedBase,
    faults: FaultPlan,
) -> FallbackChain<'a> {
    FallbackChain::new()
        .tier(ModelTier::new(model, kb).with_faults(faults))
        .tier(PredictorTier::new("ned_base", |e: &Example| ned.predict_indices(e)))
        .tier(PredictorTier::new("prior", PopularityPrior))
}

/// The acceptance scenario: a mixed fault schedule (panics, stalls, payload
/// corruption) at whatever worker count `BOOTLEG_THREADS` dictates. Every
/// request terminates exactly once; faulted requests degrade instead of
/// failing; clean requests are answered by the primary tier bit-identically
/// to a direct predictor call.
#[test]
fn chaos_every_request_terminates_exactly_once() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 24);
    let faults = FaultPlan::none()
        .with(Fault::PanicOnExample { seq: 3 })
        .with(Fault::PanicOnExample { seq: 17 })
        .with(Fault::SlowInfer { seq: 5, millis: 20 })
        .with(Fault::MalformedExample { seq: 9 })
        .with(Fault::MalformedExample { seq: 21 });
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    // The tiers consume SlowInfer/PanicOnExample; the server consumes
    // MalformedExample (it corrupts the payload after admission).
    let chain = chain(&model, &kb, &ned, faults.clone());
    let cfg = ServeConfig::default().with_queue_cap(reqs.len()).with_chaos(faults);
    let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
    assert_eq!(outcomes.len(), reqs.len());

    let direct = BootlegPredictor::new(&model, &kb);
    for (idx, outcome) in outcomes.iter().enumerate() {
        let seq = idx as u64 + 1;
        let resp = outcome.as_ref().unwrap_or_else(|e| {
            panic!("request {seq} should be answered by some tier, got {e}")
        });
        match seq {
            // Injected panics and corrupted payloads: a fallback tier answers.
            3 | 17 | 9 | 21 => {
                assert!(resp.degraded, "request {seq} should be degraded");
                assert!(resp.tier >= 1);
                assert_eq!(resp.predictions.len(), reqs[idx].mentions.len());
            }
            // Everything else (including the stalled request — no deadline
            // here): primary tier, bit-identical to the direct call.
            _ => {
                assert_eq!((resp.tier, resp.tier_name), (0, "bootleg"), "request {seq}");
                assert!(!resp.degraded);
                assert_eq!(resp.predictions, direct.predict(&reqs[idx]), "request {seq}");
            }
        }
    }
}

/// A stalled request with a real deadline is terminal (no budget left for a
/// fallback), while untouched requests still succeed. One worker, stall on
/// the *last* request, so the clean ones never queue behind it.
/// `batch_max = 1` pins per-request serving: in a micro-batch the up-front
/// stall would (correctly) delay batch-mates past their deadlines too.
#[test]
fn deadline_expiry_is_terminal_with_diagnostics() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 6);
    let last_seq = reqs.len() as u64;
    let faults = FaultPlan::none().with(Fault::SlowInfer { seq: last_seq, millis: 300 });
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    let chain = chain(&model, &kb, &ned, faults);
    let cfg = ServeConfig::default()
        .with_workers(1)
        .with_queue_cap(reqs.len())
        .with_deadline_ms(100)
        .with_batch_max(1);
    let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
    match outcomes.last().expect("outcomes are non-empty") {
        Err(ServeError::DeadlineExceeded { phase, tiers }) => {
            assert_eq!(*phase, "queue", "stall happens before the forward pass");
            assert_eq!(tiers.len(), 1, "only the primary tier was attempted");
            assert_eq!(tiers[0].tier, "bootleg");
        }
        other => panic!("stalled request should blow its deadline, got {other:?}"),
    }
    for outcome in &outcomes[..reqs.len() - 1] {
        let resp = outcome.as_ref().expect("clean request succeeds");
        assert_eq!(resp.tier, 0);
    }
}

/// Overload: one slow worker, a tiny queue, a burst of requests. The excess
/// is shed with a typed error — and the conservation law still holds: every
/// request is answered, shed, or rejected, never lost.
#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 20);
    let faults = FaultPlan::none().with(Fault::SlowInfer { seq: 1, millis: 150 });
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    let chain = chain(&model, &kb, &ned, faults);
    let cfg = ServeConfig::default().with_workers(1).with_queue_cap(2);
    let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);

    let (mut ok, mut shed) = (0usize, 0usize);
    for outcome in &outcomes {
        match outcome {
            Ok(resp) => {
                ok += 1;
                assert_eq!(resp.tier, 0, "no faults beyond the stall");
            }
            Err(ServeError::Shed { queue_depth }) => {
                shed += 1;
                assert_eq!(*queue_depth, 2, "shed at exactly the configured capacity");
            }
            other => panic!("unexpected outcome under overload: {other:?}"),
        }
    }
    assert_eq!(ok + shed, reqs.len(), "conservation: answered + shed == submitted");
    assert!(shed >= 1, "a 150ms stall against a 2-deep queue must shed");
}

/// One poisoned request inside a full micro-batch (batch_max = 8, one
/// worker): the batched forward pass panics, the model tier retries each
/// member alone under its own `catch_unwind`, and only the poisoned
/// request degrades — its batch-mates are answered by the primary tier
/// bit-identically to a direct call.
#[test]
fn poisoned_batch_member_degrades_alone() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 16);
    let faults = FaultPlan::none().with(Fault::PanicOnExample { seq: 6 });
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    let chain = chain(&model, &kb, &ned, faults);
    let direct = BootlegPredictor::new(&model, &kb);
    let cfg = ServeConfig::default()
        .with_workers(1)
        .with_queue_cap(reqs.len())
        .with_batch_max(8)
        .with_batch_wait_us(1_000_000);
    let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
    for (idx, outcome) in outcomes.iter().enumerate() {
        let seq = idx as u64 + 1;
        let resp = outcome.as_ref().expect("every request is answered by some tier");
        if seq == 6 {
            assert!(resp.degraded, "the poisoned request falls to a fallback tier");
            assert!(resp.tier >= 1);
        } else {
            assert_eq!((resp.tier, resp.degraded), (0, false), "batch-mate {seq}");
            assert_eq!(resp.predictions, direct.predict(&reqs[idx]), "batch-mate {seq}");
        }
    }
}

/// Payload corruption and stalls inside micro-batches at 2 workers:
/// corruption is applied per job at batch formation (clean batch-mates are
/// served by reference, never cloned), so only the corrupted requests
/// degrade while a stalled batch still answers on the primary tier.
#[test]
fn corrupted_batch_members_degrade_alone() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 16);
    let faults = FaultPlan::none()
        .with(Fault::MalformedExample { seq: 4 })
        .with(Fault::MalformedExample { seq: 11 })
        .with(Fault::SlowInfer { seq: 7, millis: 10 });
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    let chain = chain(&model, &kb, &ned, faults.clone());
    let direct = BootlegPredictor::new(&model, &kb);
    let cfg = ServeConfig::default()
        .with_workers(2)
        .with_queue_cap(reqs.len())
        .with_batch_max(8)
        .with_chaos(faults);
    let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
    for (idx, outcome) in outcomes.iter().enumerate() {
        let seq = idx as u64 + 1;
        let resp = outcome.as_ref().expect("every request is answered by some tier");
        match seq {
            4 | 11 => {
                assert!(resp.degraded, "corrupted request {seq} should be degraded");
                assert!(resp.tier >= 1);
                assert_eq!(resp.predictions.len(), reqs[idx].mentions.len());
            }
            _ => {
                assert_eq!((resp.tier, resp.degraded), (0, false), "request {seq}");
                assert_eq!(resp.predictions, direct.predict(&reqs[idx]), "request {seq}");
            }
        }
    }
}

/// Fault-free serving end to end: all requests on tier 0, bit-identical to
/// the direct predictor, across every worker count.
#[test]
fn fault_free_serving_is_bit_identical_to_direct_inference() {
    let (kb, c, model, ned) = setup();
    let reqs = requests(&c, 16);
    let tier0 = ModelTier::new(&model, &kb);
    let limits = tier0.limits();
    let chain = chain(&model, &kb, &ned, FaultPlan::none());
    let direct = BootlegPredictor::new(&model, &kb);
    for workers in [1, 2, 8] {
        let cfg = ServeConfig::default().with_workers(workers).with_queue_cap(reqs.len());
        let outcomes = serve_requests(&chain, &limits, &cfg, &reqs);
        for (idx, outcome) in outcomes.iter().enumerate() {
            let resp = outcome.as_ref().expect("fault-free request succeeds");
            assert_eq!((resp.tier, resp.degraded), (0, false));
            assert_eq!(
                resp.predictions,
                direct.predict(&reqs[idx]),
                "workers={workers} request {idx}"
            );
        }
    }
}
