//! Serving tiers: the units the fallback chain degrades across.
//!
//! A [`Tier`] answers a request or reports a typed [`TierFailure`] — it
//! never unwinds into the caller. [`ModelTier`] wraps the full Bootleg
//! model (deadline-aware, `catch_unwind`-isolated, fault-injectable);
//! [`PredictorTier`] adapts any [`Predictor`] — NED-Base, the popularity
//! prior — into a panic-isolated fallback tier.

use crate::error::{panic_message, TierFailure};
use bootleg_core::fault::FaultPlan;
use bootleg_core::{BootlegModel, Deadline, Example, ValidationLimits};
use bootleg_eval::Predictor;
use bootleg_kb::KnowledgeBase;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-request context threaded through the chain to every tier.
#[derive(Clone, Copy, Debug)]
pub struct RequestCx {
    /// 1-based submission sequence number (the key for injected faults).
    pub seq: u64,
    /// The request's compute budget.
    pub deadline: Deadline,
    /// Process-unique request id, minted at construction — the join key
    /// across log lines (`req=<id>`) and `/tracez` records.
    pub id: u64,
    /// Wall-clock admission time, unix milliseconds.
    pub unix_ms: u64,
    /// Admission timestamp on the serving clock, microseconds (0 until the
    /// server stamps it) — the base of the queue-wait measurement.
    pub admitted_us: u64,
}

impl RequestCx {
    /// Context for a standalone (non-queued) request; mints a fresh
    /// request id and stamps the wall-clock admission time.
    pub fn new(seq: u64, deadline: Deadline) -> Self {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self { seq, deadline, id: bootleg_obs::next_request_id(), unix_ms, admitted_us: 0 }
    }

    /// Stamps the admission time on the serving clock (µs).
    pub fn with_admitted_us(mut self, us: u64) -> Self {
        self.admitted_us = us;
        self
    }
}

/// One rung of the fallback chain.
pub trait Tier: Sync {
    /// Short static name, used in diagnostics and metrics.
    fn name(&self) -> &'static str;

    /// Answers the request or reports a typed failure. Implementations must
    /// not unwind: panics are caught and converted.
    fn predict(&self, ex: &Example, cx: &RequestCx) -> Result<Vec<usize>, TierFailure>;

    /// Answers a micro-batch, one result per request in order. The default
    /// runs the requests sequentially; tiers with a real batched engine
    /// ([`ModelTier`]) override it. Like `predict`, implementations must
    /// not unwind, and each request fails individually — one poisoned
    /// request must not take its batch-mates down.
    fn predict_batch(
        &self,
        exs: &[&Example],
        cxs: &[RequestCx],
    ) -> Vec<Result<Vec<usize>, TierFailure>> {
        exs.iter().zip(cxs).map(|(ex, cx)| self.predict(ex, cx)).collect()
    }

    /// One-time warmup before traffic: tiers that own precomputable state
    /// (the model's entity-payload plane) build it here so the first
    /// request doesn't pay the cost. The default does nothing.
    fn warm(&self) {}
}

/// The primary tier: the full Bootleg model.
///
/// Runs [`BootlegModel::infer_within`] under `catch_unwind`, so a poisoned
/// example becomes [`TierFailure::Panicked`] and an expired deadline becomes
/// [`TierFailure::DeadlineExceeded`] with the last completed phase. An
/// optional [`FaultPlan`] injects `SlowInfer` stalls and `PanicOnExample`
/// panics keyed on the request sequence number (chaos testing).
pub struct ModelTier<'a> {
    model: &'a BootlegModel,
    kb: &'a KnowledgeBase,
    faults: FaultPlan,
}

impl<'a> ModelTier<'a> {
    /// A fault-free model tier.
    pub fn new(model: &'a BootlegModel, kb: &'a KnowledgeBase) -> Self {
        Self { model, kb, faults: FaultPlan::none() }
    }

    /// Injects a deterministic fault schedule (chaos tests).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The validation limits of the wrapped model — what admission checks
    /// requests against.
    pub fn limits(&self) -> ValidationLimits {
        ValidationLimits {
            n_entities: self.model.n_entities,
            vocab_size: self.model.config.word_encoder.vocab,
            max_tokens: self.model.config.word_encoder.max_len,
        }
    }
}

impl ModelTier<'_> {
    /// The per-request body shared by `predict` and the batched retry
    /// path; `with_stall` lets the retry skip re-sleeping an injected
    /// `SlowInfer` the batch already paid for.
    fn predict_one(
        &self,
        ex: &Example,
        cx: &RequestCx,
        with_stall: bool,
    ) -> Result<Vec<usize>, TierFailure> {
        if with_stall {
            if let Some(ms) = self.faults.slow_infer_at(cx.seq) {
                // Injected stall: a slow shard / cold cache in front of the
                // forward pass.
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        if cx.deadline.expired() {
            return Err(TierFailure::DeadlineExceeded { phase: "queue" });
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.faults.panic_on_example(cx.seq) {
                panic!("injected panic on request {}", cx.seq);
            }
            self.model.infer_within(self.kb, ex, cx.deadline)
        }));
        match result {
            Ok(Ok(out)) => Ok(out.predictions),
            Ok(Err(interrupted)) => {
                Err(TierFailure::DeadlineExceeded { phase: interrupted.phase })
            }
            Err(payload) => Err(TierFailure::Panicked(panic_message(payload.as_ref()))),
        }
    }
}

impl Tier for ModelTier<'_> {
    fn name(&self) -> &'static str {
        "bootleg"
    }

    /// Materializes the model's entity-payload plane (when the policy is
    /// `full`), so serving traffic starts on the warm gather path.
    fn warm(&self) {
        self.model.warm_entity_cache();
    }

    fn predict(&self, ex: &Example, cx: &RequestCx) -> Result<Vec<usize>, TierFailure> {
        self.predict_one(ex, cx, true)
    }

    /// One ragged batched forward pass ([`BootlegModel::try_forward_batch`])
    /// for the whole micro-batch, bit-identical per request to `predict`.
    /// Per-request deadlines are checked inside the engine at phase
    /// boundaries (an expired request is evicted from the result, not the
    /// batch); injected stalls run up front (a stalled member delays its
    /// batch, exactly like a slow shard would). If the batched pass itself
    /// panics, each member retries alone under its own `catch_unwind`, so
    /// a poisoned example fails with its own diagnostic while the rest of
    /// the batch still answers.
    fn predict_batch(
        &self,
        exs: &[&Example],
        cxs: &[RequestCx],
    ) -> Vec<Result<Vec<usize>, TierFailure>> {
        assert_eq!(exs.len(), cxs.len(), "one context per request");
        if exs.len() <= 1 {
            return exs.iter().zip(cxs).map(|(ex, cx)| self.predict(ex, cx)).collect();
        }
        for cx in cxs {
            if let Some(ms) = self.faults.slow_infer_at(cx.seq) {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        let mut out: Vec<Option<Result<Vec<usize>, TierFailure>>> = vec![None; exs.len()];
        let live: Vec<usize> = (0..exs.len())
            .filter(|&i| {
                if cxs[i].deadline.expired() {
                    out[i] = Some(Err(TierFailure::DeadlineExceeded { phase: "queue" }));
                    false
                } else {
                    true
                }
            })
            .collect();
        if !live.is_empty() {
            let batch_exs: Vec<&Example> = live.iter().map(|&i| exs[i]).collect();
            let deadlines: Vec<Deadline> = live.iter().map(|&i| cxs[i].deadline).collect();
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                for &i in &live {
                    if self.faults.panic_on_example(cxs[i].seq) {
                        panic!("injected panic on request {}", cxs[i].seq);
                    }
                }
                self.model.try_forward_batch(
                    self.kb,
                    &batch_exs,
                    &bootleg_core::ForwardOptions::inference(),
                    &deadlines,
                )
            }));
            match attempt {
                Ok(results) => {
                    for (&i, r) in live.iter().zip(results) {
                        out[i] = Some(match r {
                            Ok(fwd) => Ok(fwd.predictions),
                            Err(interrupted) => {
                                Err(TierFailure::DeadlineExceeded { phase: interrupted.phase })
                            }
                        });
                    }
                }
                Err(_) => {
                    // Per-example defect attribution: retry each member
                    // alone so only the poisoned one carries the panic.
                    bootleg_obs::counter!("serve.batch_retries").inc();
                    for &i in &live {
                        out[i] = Some(self.predict_one(exs[i], &cxs[i], false));
                    }
                }
            }
        }
        out.into_iter().map(|o| o.expect("every batch member answered")).collect()
    }
}

/// Adapts any [`Predictor`] into a panic-isolated fallback tier.
///
/// Fallback tiers (NED-Base, the popularity prior) are orders of magnitude
/// cheaper than the primary model, so they deliberately do *not* check the
/// deadline: a request that blew its budget on the primary tier still gets
/// a degraded answer if the chain decides to keep going.
pub struct PredictorTier<P> {
    name: &'static str,
    inner: P,
}

impl<P: Predictor> PredictorTier<P> {
    /// Names a predictor as a serving tier.
    pub fn new(name: &'static str, inner: P) -> Self {
        Self { name, inner }
    }
}

impl<P: Predictor> Tier for PredictorTier<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn predict(&self, ex: &Example, _cx: &RequestCx) -> Result<Vec<usize>, TierFailure> {
        catch_unwind(AssertUnwindSafe(|| self.inner.predict(ex)))
            .map_err(|p| TierFailure::Panicked(panic_message(p.as_ref())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_core::fault::Fault;

    #[test]
    fn predictor_tier_isolates_panics() {
        let tier = PredictorTier::new(
            "exploding",
            |_: &Example| -> Vec<usize> { panic!("kaboom") },
        );
        let ex = Example::inference(vec![0], Vec::new());
        let cx = RequestCx::new(1, Deadline::none());
        match tier.predict(&ex, &cx) {
            Err(TierFailure::Panicked(msg)) => assert_eq!(msg, "kaboom"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(tier.name(), "exploding");
    }

    #[test]
    fn predictor_tier_passes_through_answers() {
        let tier = PredictorTier::new("echo", |e: &Example| vec![7; e.mentions.len()]);
        let ex = Example::inference(vec![0], Vec::new());
        let cx = RequestCx::new(1, Deadline::none());
        assert_eq!(tier.predict(&ex, &cx), Ok(vec![]));
    }

    #[test]
    fn fault_plan_lookup_is_seq_keyed() {
        let plan = FaultPlan::none().with(Fault::SlowInfer { seq: 3, millis: 1 });
        assert_eq!(plan.slow_infer_at(3), Some(1));
        assert_eq!(plan.slow_infer_at(4), None);
    }
}
