//! The TACRED-analog relation-extraction dataset.
//!
//! Each example is a sentence with a subject and an object mention; the task
//! is to predict the relation between them (one of the KB's relation
//! predicates, or `no_relation`), exactly TACRED's shape (41 relations +
//! no_relation). The gold relation is the KG edge between the *gold* entities
//! of the two mentions. On half the positive examples the relation's textual
//! cue is replaced by a generic connector, so text alone cannot decide and
//! entity knowledge (which entities? what do they relate to?) carries the
//! answer — the mechanism §4.3 credits for Bootleg's TACRED gains.

use bootleg_corpus::Vocab;
use bootleg_kb::{AliasId, EntityId, KnowledgeBase, RelationId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One relation-extraction example.
#[derive(Clone, Debug)]
pub struct ReExample {
    /// Token ids.
    pub tokens: Vec<u32>,
    /// Subject span (token index; single-token mentions).
    pub subj_pos: usize,
    /// Object span.
    pub obj_pos: usize,
    /// Alias of the subject mention.
    pub subj_alias: AliasId,
    /// Alias of the object mention.
    pub obj_alias: AliasId,
    /// Gold subject entity.
    pub subj_gold: EntityId,
    /// Gold object entity.
    pub obj_gold: EntityId,
    /// Gold label: `Some(relation)` or `None` for no_relation.
    pub relation: Option<RelationId>,
    /// Whether the relation cue word was replaced by a generic connector
    /// (the text-ambiguous half).
    pub cue_hidden: bool,
}

/// Dataset configuration.
#[derive(Clone, Debug)]
pub struct ReConfig {
    /// Number of training examples.
    pub n_train: usize,
    /// Number of test examples.
    pub n_test: usize,
    /// Fraction of examples with a real relation (the rest are no_relation).
    pub positive_frac: f64,
    /// Fraction of positives whose cue word is hidden behind a generic
    /// connector.
    pub hide_cue_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReConfig {
    fn default() -> Self {
        Self { n_train: 1500, n_test: 400, positive_frac: 0.6, hide_cue_frac: 0.5, seed: 99 }
    }
}

/// A generated RE dataset.
#[derive(Clone, Debug)]
pub struct ReDataset {
    /// Training examples.
    pub train: Vec<ReExample>,
    /// Test examples.
    pub test: Vec<ReExample>,
    /// Number of relation classes (labels are `0..n_relations` plus
    /// `n_relations` = no_relation).
    pub n_relations: usize,
}

impl ReDataset {
    /// The class index of an example (`n_relations` = no_relation).
    pub fn label(&self, ex: &ReExample) -> u32 {
        ex.relation.map_or(self.n_relations as u32, |r| r.0)
    }
}

/// Generates the dataset from a knowledge base.
pub fn generate_re_dataset(kb: &KnowledgeBase, vocab: &Vocab, config: &ReConfig) -> ReDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let make = |n: usize, rng: &mut StdRng| -> Vec<ReExample> {
        let mut out = Vec::with_capacity(n);
        let mut guard = 0;
        while out.len() < n && guard < n * 50 {
            guard += 1;
            let positive = rng.gen_bool(config.positive_frac);
            let example = if positive {
                positive_example(kb, vocab, config, rng)
            } else {
                negative_example(kb, vocab, rng)
            };
            if let Some(ex) = example {
                out.push(ex);
            }
        }
        out
    };
    let train = make(config.n_train, &mut rng);
    let test = make(config.n_test, &mut rng);
    ReDataset { train, test, n_relations: kb.relations.len() }
}

fn any_alias(kb: &KnowledgeBase, e: EntityId, rng: &mut StdRng, prefer_ambiguous: bool) -> AliasId {
    let aliases = &kb.entity(e).aliases;
    if prefer_ambiguous {
        let ambiguous: Vec<AliasId> =
            aliases.iter().copied().filter(|&a| kb.alias(a).ambiguous()).collect();
        if let Some(&a) = ambiguous.choose(rng) {
            return a;
        }
    }
    *aliases.first().expect("every entity has a canonical alias")
}

fn affordance_hint(kb: &KnowledgeBase, vocab: &Vocab, e: EntityId, rng: &mut StdRng) -> Option<u32> {
    let types = &kb.entity(e).types;
    let t = types.choose(rng)?;
    let a = kb.type_info(*t).affordance_tokens.choose(rng)?;
    Some(vocab.id(a))
}

fn positive_example(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    config: &ReConfig,
    rng: &mut StdRng,
) -> Option<ReExample> {
    if kb.edges.is_empty() {
        return None;
    }
    let &(subj, obj, rel) = &kb.edges[rng.gen_range(0..kb.edges.len())];
    let hide = rng.gen_bool(config.hide_cue_frac);
    build_example(kb, vocab, rng, subj, obj, Some(rel), hide)
}

fn negative_example(kb: &KnowledgeBase, vocab: &Vocab, rng: &mut StdRng) -> Option<ReExample> {
    let n = kb.num_entities() as u32;
    for _ in 0..20 {
        let a = EntityId(rng.gen_range(0..n));
        let b = EntityId(rng.gen_range(0..n));
        if a != b && kb.connected(a, b).is_none() {
            return build_example(kb, vocab, rng, a, b, None, true);
        }
    }
    None
}

fn build_example(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    rng: &mut StdRng,
    subj: EntityId,
    obj: EntityId,
    relation: Option<RelationId>,
    cue_hidden: bool,
) -> Option<ReExample> {
    let subj_alias = any_alias(kb, subj, rng, true);
    let obj_alias = any_alias(kb, obj, rng, true);
    // "the SUBJ <connector|cue> the OBJ [subject-affordance] [object-affordance]"
    let mut tokens = vec![vocab.id("the")];
    let subj_pos = tokens.len();
    tokens.push(vocab.id(&kb.alias(subj_alias).surface));
    let connector = if cue_hidden {
        // Generic connector — ambiguous between relations.
        *["with", "of", "at"].choose(rng).expect("nonempty")
    } else {
        return_cue(kb, relation, rng)?
    };
    tokens.push(vocab.id(connector));
    tokens.push(vocab.id("the"));
    let obj_pos = tokens.len();
    tokens.push(vocab.id(&kb.alias(obj_alias).surface));
    // Affordance hints let a disambiguator resolve the mentions even when
    // the relation cue is hidden.
    if let Some(t) = affordance_hint(kb, vocab, subj, rng) {
        tokens.push(t);
    }
    if let Some(t) = affordance_hint(kb, vocab, obj, rng) {
        tokens.push(t);
    }
    Some(ReExample {
        tokens,
        subj_pos,
        obj_pos,
        subj_alias,
        obj_alias,
        subj_gold: subj,
        obj_gold: obj,
        relation,
        cue_hidden,
    })
}

fn return_cue<'a>(
    kb: &'a KnowledgeBase,
    relation: Option<RelationId>,
    rng: &mut StdRng,
) -> Option<&'a str> {
    let rel = relation?;
    kb.relation_info(rel).cue_tokens.choose(rng).map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_kb::{generate as gen_kb, KbConfig};

    fn setup() -> (KnowledgeBase, Vocab) {
        let kb = gen_kb(&KbConfig { n_entities: 600, seed: 111, ..KbConfig::default() });
        let vocab = Vocab::build(&kb);
        (kb, vocab)
    }

    #[test]
    fn generates_requested_sizes() {
        let (kb, vocab) = setup();
        let ds = generate_re_dataset(&kb, &vocab, &ReConfig { n_train: 200, n_test: 50, ..Default::default() });
        assert_eq!(ds.train.len(), 200);
        assert_eq!(ds.test.len(), 50);
    }

    #[test]
    fn positive_labels_match_kg_edges() {
        let (kb, vocab) = setup();
        let ds = generate_re_dataset(&kb, &vocab, &ReConfig { n_train: 300, n_test: 10, ..Default::default() });
        for ex in &ds.train {
            match ex.relation {
                Some(r) => {
                    assert_eq!(kb.connected(ex.subj_gold, ex.obj_gold), Some(r));
                }
                None => assert!(kb.connected(ex.subj_gold, ex.obj_gold).is_none()),
            }
        }
    }

    #[test]
    fn both_cue_modes_present() {
        let (kb, vocab) = setup();
        let ds = generate_re_dataset(&kb, &vocab, &ReConfig { n_train: 300, n_test: 10, ..Default::default() });
        let positives: Vec<_> = ds.train.iter().filter(|e| e.relation.is_some()).collect();
        assert!(positives.iter().any(|e| e.cue_hidden));
        assert!(positives.iter().any(|e| !e.cue_hidden));
        // no_relation examples exist too
        assert!(ds.train.iter().any(|e| e.relation.is_none()));
    }

    #[test]
    fn spans_point_at_alias_tokens() {
        let (kb, vocab) = setup();
        let ds = generate_re_dataset(&kb, &vocab, &ReConfig { n_train: 50, n_test: 5, ..Default::default() });
        for ex in &ds.train {
            assert_eq!(ex.tokens[ex.subj_pos], vocab.id(&kb.alias(ex.subj_alias).surface));
            assert_eq!(ex.tokens[ex.obj_pos], vocab.id(&kb.alias(ex.obj_alias).surface));
        }
    }

    #[test]
    fn labels_in_range() {
        let (kb, vocab) = setup();
        let ds = generate_re_dataset(&kb, &vocab, &ReConfig { n_train: 100, n_test: 10, ..Default::default() });
        for ex in ds.train.iter().chain(&ds.test) {
            assert!(ds.label(ex) <= ds.n_relations as u32);
        }
    }
}
