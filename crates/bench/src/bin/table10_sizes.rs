//! Table 10: model sizes (embedding MB / network MB / total MB) for the five
//! ablation models. No training needed — sizes are a property of the
//! architecture over the knowledge base.
//!
//! Run: `cargo run --release -p bootleg-bench --bin table10_sizes`

use bootleg_baselines::{NedBase, NedBaseConfig};
use bootleg_bench::{row, Results, ResultsTable, Workbench};
use bootleg_core::{BootlegConfig, BootlegModel, ModelVariant, SizeReport};

fn main() -> std::io::Result<()> {
    let wb = Workbench::full(2024);

    let widths = [22, 16, 14, 12];
    let headers = ["Model", "Embedding (MB)", "Network (MB)", "Total (MB)"];
    let mut table = ResultsTable::new(&headers);
    println!("Table 10: model sizes (MB of f32 parameters; word encoder excluded,");
    println!("as the paper excludes the shared frozen BERT)");
    println!("{}", row(&headers.map(String::from), &widths));

    // NED-Base first (entity table + mention projection).
    let ned = NedBase::new(&wb.kb, &wb.corpus.vocab, NedBaseConfig::default());
    let emb = ned.params.bytes_where(|n| n.starts_with("embedding.")) as f64 / 1_048_576.0;
    let net = ned.params.bytes_where(|n| n.starts_with("net.")) as f64 / 1_048_576.0;
    let cells = [
        "NED-Base".to_string(),
        format!("{emb:.3}"),
        format!("{net:.3}"),
        format!("{:.3}", emb + net),
    ];
    table.add(&cells);
    println!("{}", row(&cells, &widths));

    for variant in [
        ModelVariant::Full,
        ModelVariant::EntOnly,
        ModelVariant::TypeOnly,
        ModelVariant::KgOnly,
    ] {
        let model = BootlegModel::new(
            &wb.kb,
            &wb.corpus.vocab,
            &wb.counts,
            BootlegConfig::default().with_variant(variant),
        );
        let s = SizeReport::of(&model);
        let cells = [
            variant.name().to_string(),
            format!("{:.3}", s.embedding_mb()),
            format!("{:.3}", s.network_mb()),
            format!("{:.3}", s.total_mb()),
        ];
        table.add(&cells);
        println!("{}", row(&cells, &widths));
    }
    println!(
        "\n(entities: {}, types: {}, relations: {})",
        wb.kb.num_entities(),
        wb.kb.types.len(),
        wb.kb.relations.len()
    );

    let mut results = Results::new("table10_sizes");
    results.set("entities", wb.kb.num_entities());
    results.set("types", wb.kb.types.len());
    results.set("relations", wb.kb.relations.len());
    results.set_table("rows", table);
    results.write()?;
    Ok(())
}
