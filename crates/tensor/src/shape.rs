//! Shape utilities for row-major dense tensors of rank 0–3.

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// `true` if two shapes are identical.
#[inline]
pub fn same(a: &[usize], b: &[usize]) -> bool {
    a == b
}

/// Splits a shape into `(leading, last)` where `leading` is the product of all
/// dimensions except the last. A rank-0 or rank-1 tensor has `leading == 1`.
#[inline]
pub fn rows_cols(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        _ => {
            let last = shape[shape.len() - 1];
            (numel(shape) / last.max(1), last)
        }
    }
}

/// Shape of the result of swapping the last two axes. Panics for rank < 2.
pub fn transpose_last2(shape: &[usize]) -> Vec<usize> {
    assert!(shape.len() >= 2, "transpose_last2 needs rank >= 2, got {shape:?}");
    let mut out = shape.to_vec();
    let n = out.len();
    out.swap(n - 2, n - 1);
    out
}

/// For a batched matmul `(b, m, k) x (b, k, n)` returns `(b, m, k, n)`.
/// Also accepts the unbatched 2-D x 2-D case, reporting `b == 1`.
pub fn batch_matmul_dims(a: &[usize], b: &[usize]) -> (usize, usize, usize, usize) {
    match (a.len(), b.len()) {
        (2, 2) => {
            assert_eq!(a[1], b[0], "matmul inner-dim mismatch: {a:?} x {b:?}");
            (1, a[0], a[1], b[1])
        }
        (3, 3) => {
            assert_eq!(a[0], b[0], "batched matmul batch mismatch: {a:?} x {b:?}");
            assert_eq!(a[2], b[1], "batched matmul inner-dim mismatch: {a:?} x {b:?}");
            (a[0], a[1], a[2], b[2])
        }
        (3, 2) => {
            assert_eq!(a[2], b[0], "matmul inner-dim mismatch: {a:?} x {b:?}");
            (a[0], a[1], a[2], b[1])
        }
        _ => panic!("unsupported matmul ranks: {a:?} x {b:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[3]), 3);
        assert_eq!(numel(&[2, 3]), 6);
        assert_eq!(numel(&[2, 3, 4]), 24);
    }

    #[test]
    fn rows_cols_splits() {
        assert_eq!(rows_cols(&[5, 7]), (5, 7));
        assert_eq!(rows_cols(&[2, 5, 7]), (10, 7));
        assert_eq!(rows_cols(&[7]), (1, 7));
        assert_eq!(rows_cols(&[]), (1, 1));
    }

    #[test]
    fn transpose_shape() {
        assert_eq!(transpose_last2(&[2, 3]), vec![3, 2]);
        assert_eq!(transpose_last2(&[4, 2, 3]), vec![4, 3, 2]);
    }

    #[test]
    #[should_panic]
    fn transpose_rank1_panics() {
        transpose_last2(&[3]);
    }

    #[test]
    fn matmul_dims() {
        assert_eq!(batch_matmul_dims(&[2, 3], &[3, 5]), (1, 2, 3, 5));
        assert_eq!(batch_matmul_dims(&[4, 2, 3], &[4, 3, 5]), (4, 2, 3, 5));
        assert_eq!(batch_matmul_dims(&[4, 2, 3], &[3, 5]), (4, 2, 3, 5));
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        batch_matmul_dims(&[2, 3], &[4, 5]);
    }
}
