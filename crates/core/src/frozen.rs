//! The frozen serving artifact: one file holding everything a serving
//! process needs — model configuration, all trained parameters, the
//! knowledge base, the vocabulary, training counts, and the prebuilt
//! entity-payload plane — so startup is a validated bulk load instead of
//! KB regeneration plus a tensor-by-tensor checkpoint parse.
//!
//! Sections (in the `tensor::frozen` container):
//!
//! | id         | contents                                                  |
//! |------------|-----------------------------------------------------------|
//! | `MODELCFG` | full [`BootlegConfig`] (every field, typed tags)          |
//! | `PARAMNAM` | parameter manifest: name, shape, float offset + length    |
//! | `PARAMF32` | all parameter values, one concatenated little-endian blob |
//! | `KBASE`    | the knowledge base (see [`bootleg_kb::frozen`])           |
//! | `VOCAB`    | id-ordered token list                                     |
//! | `COUNTS`   | per-entity training occurrence counts                     |
//! | `EPLANMET` | entity-payload plane shape (present only when exported)   |
//! | `EPLANF32` | entity-payload plane rows, raw f32                        |
//!
//! # Bit-identity
//!
//! [`thaw_from_bytes`] rebuilds the model through [`BootlegModel::new`]
//! with the *decoded* KB/vocab/config — so every derived table (padded
//! type/relation bags, titles, regularization) is recomputed by the same
//! code that built the live model — then overwrites each parameter's values
//! byte-for-byte from `PARAMF32`. Since predictions are a function of
//! (config, derived tables, parameter bytes) only, a thawed model's outputs
//! are bit-identical to the live-built model it was frozen from (asserted
//! end-to-end by `tests/frozen_golden.rs`).
//!
//! The f32 blobs load with a single bulk copy each
//! ([`bootleg_tensor::frozen::bulk_f32`]); there is no per-element parse
//! loop anywhere on this path.

use crate::config::{BootlegConfig, ModelVariant};
use crate::model::BootlegModel;
use crate::regularization::RegScheme;
use bootleg_corpus::Vocab;
use bootleg_kb::{EntityId, KnowledgeBase};
use bootleg_nn::encoder::WordEncoderConfig;
use bootleg_tensor::frozen::{f32_bytes, Builder, Cursor, FrozenReader, FrozenWriter};
pub use bootleg_tensor::frozen::FrozenError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

pub const SECTION_CONFIG: &str = "MODELCFG";
pub const SECTION_PARAM_MANIFEST: &str = "PARAMNAM";
pub const SECTION_PARAM_F32: &str = "PARAMF32";
pub const SECTION_VOCAB: &str = "VOCAB";
pub const SECTION_COUNTS: &str = "COUNTS";
pub const SECTION_PLANE_META: &str = "EPLANMET";
pub const SECTION_PLANE_F32: &str = "EPLANF32";

/// Environment variable naming the artifact to serve from.
pub const ARTIFACT_ENV: &str = "BOOTLEG_ARTIFACT";

/// Sanity ceilings for decoded config fields: large enough for any real
/// deployment, small enough that a hostile config cannot drive gigabyte
/// allocations inside [`BootlegModel::new`].
const MAX_DIM: usize = 1 << 14;
const MAX_LAYERS: usize = 1 << 8;
const MAX_VOCAB: usize = 1 << 24;
const MAX_PARAMS: usize = 1 << 12;

/// The path named by `BOOTLEG_ARTIFACT`, if set and non-empty.
pub fn artifact_from_env() -> Option<PathBuf> {
    std::env::var(ARTIFACT_ENV).ok().filter(|v| !v.trim().is_empty()).map(PathBuf::from)
}

/// Everything thawed from an artifact. The model borrows nothing: the
/// bundle is self-contained and can back a serving tier directly.
pub struct FrozenBundle {
    pub model: BootlegModel,
    pub kb: KnowledgeBase,
    pub vocab: Vocab,
    /// Per-entity training occurrence counts (the `COUNTS` section) — the
    /// same map the model was built with, re-exposed so serving layers can
    /// label head/torso/tail/unseen popularity slices without the corpus.
    pub counts: HashMap<EntityId, u32>,
}

/// The canonical inputs of the golden conformance fixture
/// (`tests/data/golden.btfz`): a small seeded KB and corpus plus a
/// serving-config model. Pinned here so the fixture generator
/// (`freeze_artifact --golden`) and the conformance suite
/// (`tests/frozen_golden.rs`) can never drift apart. Any change to the
/// generators, the parameter initialization, or this recipe is *supposed*
/// to fail the golden test — regenerate the fixture deliberately
/// (`cargo run -p bootleg-bench --bin freeze_artifact -- --golden --out
/// tests/data/golden.btfz`) when that happens.
pub fn golden_inputs() -> (KnowledgeBase, bootleg_corpus::Corpus, BootlegModel) {
    let kb = bootleg_kb::generate(&bootleg_kb::KbConfig {
        n_entities: 160,
        n_types: 24,
        n_relations: 12,
        seed: 2021,
        ..Default::default()
    });
    let corpus = bootleg_corpus::generate_corpus(
        &kb,
        &bootleg_corpus::CorpusConfig { n_pages: 48, seed: 2021, ..Default::default() },
    );
    let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
    let mut model = BootlegModel::new(
        &kb,
        &corpus.vocab,
        &counts,
        BootlegConfig::default().serving(),
    );
    // Pin the cache policy so the exported plane (and hence the fixture
    // bytes) never depends on the generating process's environment.
    model.set_entity_cache_policy(crate::entitycache::CachePolicy::Full);
    (kb, corpus, model)
}

// ---------------------------------------------------------------------------
// Config codec.
// ---------------------------------------------------------------------------

fn encode_config(cfg: &BootlegConfig) -> Vec<u8> {
    let mut b = Builder::new();
    b.u32(cfg.hidden as u32)
        .u32(cfg.entity_dim as u32)
        .u32(cfg.type_dim as u32)
        .u32(cfg.rel_dim as u32)
        .u32(cfg.coarse_dim as u32)
        .u32(cfg.n_layers as u32)
        .u32(cfg.n_heads as u32)
        .f32(cfg.dropout)
        .u32(cfg.max_types as u32)
        .u32(cfg.max_relations as u32);
    b.u8(match cfg.variant {
        ModelVariant::Full => 0,
        ModelVariant::EntOnly => 1,
        ModelVariant::TypeOnly => 2,
        ModelVariant::KgOnly => 3,
    });
    b.u8(cfg.type_prediction as u8);
    let (tag, p) = match cfg.regularization {
        RegScheme::None => (0u8, 0.0),
        RegScheme::Fixed(p) => (1, p),
        RegScheme::InvPopPow => (2, 0.0),
        RegScheme::InvPopLog => (3, 0.0),
        RegScheme::InvPopLin => (4, 0.0),
        RegScheme::PopPow => (5, 0.0),
    };
    b.u8(tag).f32(p);
    b.u32(cfg.word_encoder.vocab as u32)
        .u32(cfg.word_encoder.d_model as u32)
        .u32(cfg.word_encoder.n_layers as u32)
        .u32(cfg.word_encoder.n_heads as u32)
        .u32(cfg.word_encoder.max_len as u32)
        .f32(cfg.word_encoder.dropout);
    b.u8(cfg.title_feature as u8)
        .u8(cfg.cooccur_kg as u8)
        .u8(cfg.position_encoding as u8)
        .u8(cfg.kg_two_hop as u8)
        .u8(cfg.ensemble_scoring as u8)
        .u8(cfg.use_ent2ent as u8)
        .u64(cfg.seed);
    b.into_bytes()
}

fn schema(section: &str, what: impl Into<String>) -> FrozenError {
    FrozenError::SectionSchema { section: section.to_string(), what: what.into() }
}

fn read_bool(c: &mut Cursor<'_>, what: &str) -> Result<bool, FrozenError> {
    match c.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(schema(SECTION_CONFIG, format!("{what} tag {v} is not a bool"))),
    }
}

fn decode_config(payload: &[u8]) -> Result<BootlegConfig, FrozenError> {
    let mut c = Cursor::new(SECTION_CONFIG, payload);
    let dim = |c: &mut Cursor<'_>| c.count(MAX_DIM);
    let hidden = dim(&mut c)?;
    let entity_dim = dim(&mut c)?;
    let type_dim = dim(&mut c)?;
    let rel_dim = dim(&mut c)?;
    let coarse_dim = dim(&mut c)?;
    let n_layers = c.count(MAX_LAYERS)?;
    let n_heads = c.count(MAX_LAYERS)?;
    let dropout = c.f32()?;
    let max_types = c.count(MAX_DIM)?;
    let max_relations = c.count(MAX_DIM)?;
    let variant = match c.u8()? {
        0 => ModelVariant::Full,
        1 => ModelVariant::EntOnly,
        2 => ModelVariant::TypeOnly,
        3 => ModelVariant::KgOnly,
        v => return Err(schema(SECTION_CONFIG, format!("variant tag {v} out of range"))),
    };
    let type_prediction = read_bool(&mut c, "type_prediction")?;
    let reg_tag = c.u8()?;
    let reg_p = c.f32()?;
    let regularization = match reg_tag {
        0 => RegScheme::None,
        1 => {
            if !reg_p.is_finite() {
                return Err(schema(SECTION_CONFIG, "non-finite fixed regularization"));
            }
            RegScheme::Fixed(reg_p)
        }
        2 => RegScheme::InvPopPow,
        3 => RegScheme::InvPopLog,
        4 => RegScheme::InvPopLin,
        5 => RegScheme::PopPow,
        v => return Err(schema(SECTION_CONFIG, format!("regularization tag {v} out of range"))),
    };
    let word_encoder = WordEncoderConfig {
        vocab: c.count(MAX_VOCAB)?,
        d_model: dim(&mut c)?,
        n_layers: c.count(MAX_LAYERS)?,
        n_heads: c.count(MAX_LAYERS)?,
        max_len: c.count(MAX_DIM)?,
        dropout: c.f32()?,
    };
    let title_feature = read_bool(&mut c, "title_feature")?;
    let cooccur_kg = read_bool(&mut c, "cooccur_kg")?;
    let position_encoding = read_bool(&mut c, "position_encoding")?;
    let kg_two_hop = read_bool(&mut c, "kg_two_hop")?;
    let ensemble_scoring = read_bool(&mut c, "ensemble_scoring")?;
    let use_ent2ent = read_bool(&mut c, "use_ent2ent")?;
    let seed = c.u64()?;
    c.finish()?;
    Ok(BootlegConfig {
        hidden,
        entity_dim,
        type_dim,
        rel_dim,
        coarse_dim,
        n_layers,
        n_heads,
        dropout,
        max_types,
        max_relations,
        variant,
        type_prediction,
        regularization,
        word_encoder,
        title_feature,
        cooccur_kg,
        position_encoding,
        kg_two_hop,
        ensemble_scoring,
        use_ent2ent,
        seed,
    })
}

// ---------------------------------------------------------------------------
// Freeze.
// ---------------------------------------------------------------------------

/// Serialises a trained model + KB + vocab into artifact bytes.
///
/// Fails with [`FrozenError::Unsupported`] when the model carries state the
/// format does not snapshot (the benchmark co-occurrence index).
pub fn freeze(
    model: &BootlegModel,
    kb: &KnowledgeBase,
    vocab: &Vocab,
) -> Result<Vec<u8>, FrozenError> {
    if model.cooccur.is_some() {
        return Err(FrozenError::Unsupported {
            what: "models with a sentence co-occurrence index (benchmark config) cannot be \
                   frozen; rebuild the index at load time instead"
                .into(),
        });
    }
    if kb.num_entities() != model.n_entities {
        return Err(FrozenError::Unsupported {
            what: format!(
                "KB has {} entities but the model was built for {}",
                kb.num_entities(),
                model.n_entities
            ),
        });
    }

    // Parameter manifest + one concatenated value blob, in store order
    // (which is construction order, deterministic for a given config).
    let mut manifest = Builder::new();
    let mut values: Vec<f32> = Vec::with_capacity(model.params.num_scalars(false));
    let n_params = model.params.iter().count();
    manifest.u32(n_params as u32);
    for (_, p) in model.params.iter() {
        manifest.string(&p.name);
        manifest.u32s(&p.data.shape().iter().map(|&d| d as u32).collect::<Vec<_>>());
        manifest.u64(values.len() as u64);
        manifest.u64(p.data.numel() as u64);
        values.extend_from_slice(p.data.data());
    }

    let mut vocab_b = Builder::new();
    vocab_b.u32(vocab.len() as u32);
    for w in vocab.words() {
        vocab_b.string(w);
    }

    let mut counts_b = Builder::new();
    counts_b.u32s(&model.entity_counts);

    let mut w = FrozenWriter::new();
    w.add(SECTION_CONFIG, encode_config(&model.config));
    w.add(SECTION_PARAM_MANIFEST, manifest.into_bytes());
    w.add(SECTION_PARAM_F32, f32_bytes(&values));
    w.add(bootleg_kb::frozen::SECTION_KB, bootleg_kb::frozen::encode(kb));
    w.add(SECTION_VOCAB, vocab_b.into_bytes());
    w.add(SECTION_COUNTS, counts_b.into_bytes());
    if let Some((width, rows)) = model.export_entity_plane() {
        let mut meta = Builder::new();
        meta.u32(width as u32).u64((rows.len() / width) as u64);
        w.add(SECTION_PLANE_META, meta.into_bytes());
        w.add(SECTION_PLANE_F32, f32_bytes(&rows));
    }
    Ok(w.to_bytes())
}

/// Freezes to a file (atomic write).
pub fn freeze_to_path(
    model: &BootlegModel,
    kb: &KnowledgeBase,
    vocab: &Vocab,
    path: &Path,
) -> Result<(), FrozenError> {
    let bytes = freeze(model, kb, vocab)?;
    bootleg_tensor::checkpoint::atomic_write(path, &bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Thaw.
// ---------------------------------------------------------------------------

/// Thaws an artifact file into a ready-to-serve bundle, recording
/// `frozen.{load_ns,bytes,sections}` observability counters.
pub fn thaw_from_path(path: &Path) -> Result<FrozenBundle, FrozenError> {
    let start = std::time::Instant::now();
    let bytes = std::fs::read(path)?;
    let n_bytes = bytes.len();
    let reader = FrozenReader::from_bytes(bytes)?;
    let n_sections = reader.sections().len();
    let bundle = thaw(&reader)?;
    bootleg_obs::counter!("frozen.load_ns").add(start.elapsed().as_nanos() as u64);
    bootleg_obs::counter!("frozen.bytes").add(n_bytes as u64);
    bootleg_obs::counter!("frozen.sections").add(n_sections as u64);
    Ok(bundle)
}

/// Thaws an artifact held in memory (fuzz/test entry point).
pub fn thaw_from_bytes(bytes: Vec<u8>) -> Result<FrozenBundle, FrozenError> {
    thaw(&FrozenReader::from_bytes(bytes)?)
}

fn thaw(reader: &FrozenReader) -> Result<FrozenBundle, FrozenError> {
    let config = decode_config(reader.require(SECTION_CONFIG)?)?;
    let kb = bootleg_kb::frozen::decode(reader.require(bootleg_kb::frozen::SECTION_KB)?)?;

    let vocab_payload = reader.require(SECTION_VOCAB)?;
    let mut c = Cursor::new(SECTION_VOCAB, vocab_payload);
    let n_words = c.count(MAX_VOCAB)?;
    let words: Vec<String> =
        (0..n_words).map(|_| c.string(1 << 10)).collect::<Result<_, _>>()?;
    c.finish()?;
    let vocab = Vocab::from_words(words)
        .ok_or_else(|| schema(SECTION_VOCAB, "duplicate word (token ids must be unique)"))?;
    if config.word_encoder.vocab != vocab.len() {
        return Err(schema(
            SECTION_VOCAB,
            format!(
                "config expects a {}-token vocabulary, artifact has {}",
                config.word_encoder.vocab,
                vocab.len()
            ),
        ));
    }

    let mut c = Cursor::new(SECTION_COUNTS, reader.require(SECTION_COUNTS)?);
    let counts_vec = c.u32s(MAX_VOCAB)?;
    c.finish()?;
    if counts_vec.len() != kb.num_entities() {
        return Err(schema(
            SECTION_COUNTS,
            format!("{} counts for {} entities", counts_vec.len(), kb.num_entities()),
        ));
    }
    let counts: HashMap<EntityId, u32> = counts_vec
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| (EntityId(i as u32), n))
        .collect();

    // Rebuild the model architecture from the decoded inputs, then restore
    // the trained parameter bytes. The skip-init guard makes construction
    // allocate zeroed weight tensors instead of sampling ~10⁶ random draws
    // that `restore_params` would overwrite anyway — `restore_params`
    // enforces that every parameter is covered, so no zero row can survive.
    let mut model = {
        let _skip = bootleg_tensor::init::skip_init();
        BootlegModel::new(&kb, &vocab, &counts, config)
    };
    restore_params(&mut model, reader)?;

    // The payload plane was built from the weights just restored, so it is
    // current *by construction*; install it under the post-restore version
    // stamp. Non-`Full` cache policies ignore it (install returns false).
    if let (Some(meta), Ok(rows)) =
        (reader.section(SECTION_PLANE_META), reader.f32_section(SECTION_PLANE_F32))
    {
        let mut c = Cursor::new(SECTION_PLANE_META, meta);
        let width = c.count(MAX_DIM)?;
        let n_rows = c.u64()? as usize;
        c.finish()?;
        if width == 0 || n_rows != model.n_entities || rows.len() != n_rows * width {
            return Err(schema(
                SECTION_PLANE_META,
                format!(
                    "plane {n_rows}x{width} does not match {} entities / {} floats",
                    model.n_entities,
                    rows.len()
                ),
            ));
        }
        model.install_entity_plane(width, rows);
    }

    Ok(FrozenBundle { model, kb, vocab, counts })
}

/// Overwrites the freshly initialised parameters with the frozen values.
/// Every manifest entry must match a parameter of the same name and shape;
/// every parameter must be covered exactly once.
fn restore_params(model: &mut BootlegModel, reader: &FrozenReader) -> Result<(), FrozenError> {
    // Copy straight from the raw section into each parameter's own buffer:
    // one memcpy per tensor, no intermediate whole-blob materialization.
    let raw = reader.require(SECTION_PARAM_F32)?;
    if raw.len() % 4 != 0 {
        return Err(schema(
            SECTION_PARAM_F32,
            format!("{} bytes is not a whole number of f32s", raw.len()),
        ));
    }
    let total_floats = raw.len() / 4;
    let manifest = reader.require(SECTION_PARAM_MANIFEST)?;
    let mut c = Cursor::new(SECTION_PARAM_MANIFEST, manifest);

    let by_name: HashMap<String, bootleg_tensor::ParamId> =
        model.params.iter().map(|(id, p)| (p.name.clone(), id)).collect();
    let n = c.count(MAX_PARAMS)?;
    if n != by_name.len() {
        return Err(schema(
            SECTION_PARAM_MANIFEST,
            format!("{n} frozen parameters, model has {}", by_name.len()),
        ));
    }
    let mut seen = vec![false; n];
    for _ in 0..n {
        let name = c.string(1 << 10)?;
        let shape: Vec<usize> = c.u32s(8)?.into_iter().map(|d| d as usize).collect();
        let off = c.u64()? as usize;
        let len = c.u64()? as usize;
        let id = *by_name.get(&name).ok_or_else(|| {
            schema(SECTION_PARAM_MANIFEST, format!("unknown parameter {name:?}"))
        })?;
        if seen[id.index()] {
            return Err(schema(SECTION_PARAM_MANIFEST, format!("parameter {name:?} repeated")));
        }
        seen[id.index()] = true;
        // `get_mut` bumps the store's version stamp, correctly invalidating
        // any payload plane built from the pre-restore initialization.
        let param = model.params.get_mut(id);
        if param.data.shape() != &shape[..] {
            return Err(schema(
                SECTION_PARAM_MANIFEST,
                format!(
                    "parameter {name:?} has shape {shape:?} frozen, {:?} live",
                    param.data.shape()
                ),
            ));
        }
        let end = off.checked_add(len).filter(|&e| e <= total_floats).ok_or_else(|| {
            schema(SECTION_PARAM_MANIFEST, format!("parameter {name:?} values out of range"))
        })?;
        if len != param.data.numel() {
            return Err(schema(
                SECTION_PARAM_MANIFEST,
                format!("parameter {name:?}: {len} values for {} slots", param.data.numel()),
            ));
        }
        bootleg_tensor::frozen::copy_f32(&raw[off * 4..end * 4], param.data.data_mut());
    }
    c.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_corpus::{generate_corpus, CorpusConfig};
    use bootleg_kb::{generate as gen_kb, KbConfig};

    fn setup() -> (KnowledgeBase, Vocab, BootlegModel) {
        let kb = gen_kb(&KbConfig { n_entities: 150, seed: 11, ..KbConfig::default() });
        let corpus = generate_corpus(
            &kb,
            &CorpusConfig { n_pages: 30, seed: 11, ..CorpusConfig::default() },
        );
        let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
        let model = BootlegModel::new(&kb, &corpus.vocab, &counts, BootlegConfig::default());
        (kb, corpus.vocab, model)
    }

    #[test]
    fn freeze_thaw_round_trips_params_and_tables() {
        let (kb, vocab, model) = setup();
        let bytes = freeze(&model, &kb, &vocab).unwrap();
        let bundle = thaw_from_bytes(bytes).unwrap();
        assert_eq!(bundle.model.n_entities, model.n_entities);
        assert_eq!(bundle.vocab.len(), vocab.len());
        assert_eq!(bundle.model.entity_counts, model.entity_counts);
        assert_eq!(bundle.model.reg_p, model.reg_p);
        let n = model.params.iter().count();
        assert_eq!(bundle.model.params.iter().count(), n);
        for ((_, a), (_, b)) in model.params.iter().zip(bundle.model.params.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.data.shape(), b.data.shape());
            let ab = a.data.data().iter().map(|v| v.to_bits());
            let bb = b.data.data().iter().map(|v| v.to_bits());
            assert!(ab.eq(bb), "parameter {} not bit-identical", a.name);
        }
    }

    #[test]
    fn freeze_is_deterministic() {
        let (kb, vocab, model) = setup();
        assert_eq!(freeze(&model, &kb, &vocab).unwrap(), freeze(&model, &kb, &vocab).unwrap());
    }

    #[test]
    fn cooccur_model_is_unsupported() {
        let kb = gen_kb(&KbConfig { n_entities: 60, seed: 3, ..KbConfig::default() });
        let corpus = generate_corpus(
            &kb,
            &CorpusConfig { n_pages: 10, seed: 3, ..CorpusConfig::default() },
        );
        let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
        let mut model = BootlegModel::new(
            &kb,
            &corpus.vocab,
            &counts,
            BootlegConfig::default().benchmark(),
        );
        model.set_cooccurrence(crate::cooccur::CooccurrenceIndex::build(&[], 1));
        assert!(matches!(
            freeze(&model, &kb, &corpus.vocab),
            Err(FrozenError::Unsupported { .. })
        ));
    }

    #[test]
    fn thawed_plane_is_installed_and_current() {
        let (kb, vocab, mut model) = setup();
        model.set_entity_cache_policy(crate::entitycache::CachePolicy::Full);
        model.warm_entity_cache();
        let cached_bytes = model.entity_cache_bytes();
        assert!(cached_bytes > 0);
        let bytes = freeze(&model, &kb, &vocab).unwrap();
        let bundle = thaw_from_bytes(bytes).unwrap();
        if matches!(bundle.model.entity_cache_policy(), crate::entitycache::CachePolicy::Full) {
            // Installed at thaw: bytes present without any warm call.
            assert_eq!(bundle.model.entity_cache_bytes(), cached_bytes);
        }
    }

    #[test]
    fn artifact_env_helper() {
        // Only checks the parse of an explicit value; the var is unset in
        // the test environment by default.
        assert!(artifact_from_env().is_none() || std::env::var(ARTIFACT_ENV).is_ok());
    }
}
