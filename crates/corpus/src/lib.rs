//! # bootleg-corpus
//!
//! The self-supervision data pipeline of the Bootleg reproduction: a
//! synthetic Wikipedia-style corpus generator whose sentences are built from
//! the paper's four reasoning-pattern templates (§2.1), page structure with
//! deliberately-unlabeled mentions (the paper estimates 68% of Wikipedia
//! entities are unlabeled), the two weak-labeling heuristics of §3.3.2
//! (gender-matched pronouns, alternative names), and generators for the three
//! benchmark analogs (KORE50 / RSS500 / AIDA, Appendix B).
//!
//! The corpus substitutes for the November-2019 Wikipedia dump the paper
//! trains on; DESIGN.md documents why the substitution preserves the tail
//! phenomena (all of them are statistical properties this generator controls
//! directly).

pub mod benchmarks;
pub mod generator;
pub mod sentence;
pub mod stats;
pub mod templates;
pub mod vocab;
pub mod weaklabel;

pub use generator::{generate_corpus, Corpus, CorpusConfig};
pub use sentence::{Document, LabelKind, Mention, Pattern, Sentence};
pub use vocab::Vocab;
