//! # bootleg-bench
//!
//! Shared experiment scaffolding for the per-table/per-figure binaries in
//! `src/bin/` and the Criterion benches in `benches/`.
//!
//! Two standard workbenches mirror the paper's two data regimes:
//!
//! * [`Workbench::full`] — the "full Wikipedia" analog used by Tables 1/2/7,
//!   Figures 1/3/4.
//! * [`Workbench::micro`] — the "Wikipedia subset" analog used by the
//!   regularization/weak-labeling ablations (Tables 6/9/11).
//!
//! Sizes scale with the `BOOTLEG_SCALE` environment variable (default 1.0);
//! EXPERIMENTS.md records results at the default scale.

use bootleg_core::fault::FaultPlan;
use bootleg_core::{
    train_resumable, BootlegConfig, BootlegModel, CheckpointConfig, TrainConfig,
};
use bootleg_corpus::{generate_corpus, weaklabel, Corpus, CorpusConfig};
use bootleg_eval::BootlegPredictor;
use bootleg_kb::{generate as generate_kb, EntityId, KbConfig, KnowledgeBase};
use std::collections::HashMap;

pub mod results;

pub use results::{Json, Results, ResultsTable};

/// A prepared knowledge base + corpus + occurrence counts.
pub struct Workbench {
    /// The knowledge base.
    pub kb: KnowledgeBase,
    /// The corpus, already weak-labeled (unless built with `raw`).
    pub corpus: Corpus,
    /// Occurrence counts including weak labels (the §4.1 slicing counts).
    pub counts: HashMap<EntityId, u32>,
    /// Occurrence counts over anchors only (pre weak labeling, Table 11).
    pub counts_pre_wl: HashMap<EntityId, u32>,
    /// Weak-labeling statistics of the pass that was applied.
    pub wl_stats: weaklabel::WeakLabelStats,
}

/// Reads the global scale knob (`BOOTLEG_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("BOOTLEG_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(16.0) as usize
}

impl Workbench {
    /// The "full Wikipedia" analog.
    pub fn full(seed: u64) -> Self {
        Self::build(
            KbConfig { n_entities: scaled(6_000), seed, ..KbConfig::default() },
            CorpusConfig { n_pages: scaled(2_400), seed: seed ^ 1, ..CorpusConfig::default() },
            true,
        )
    }

    /// The "Wikipedia subset" (micro) analog for ablations.
    pub fn micro(seed: u64) -> Self {
        Self::build(
            KbConfig { n_entities: scaled(2_000), n_types: 60, n_relations: 30, seed, ..KbConfig::default() },
            CorpusConfig { n_pages: scaled(800), seed: seed ^ 1, ..CorpusConfig::default() },
            true,
        )
    }

    /// Builds a workbench; `weak_label` controls whether the §3.3.2 pass runs.
    pub fn build(kb_cfg: KbConfig, corpus_cfg: CorpusConfig, weak_label: bool) -> Self {
        let kb = generate_kb(&kb_cfg);
        let mut corpus = generate_corpus(&kb, &corpus_cfg);
        let counts_pre_wl = bootleg_corpus::stats::entity_counts(&corpus.train, false);
        let wl_stats = if weak_label {
            let vocab = corpus.vocab.clone();
            weaklabel::apply(&kb, &vocab, &mut corpus.train)
        } else {
            weaklabel::WeakLabelStats::default()
        };
        let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
        Self { kb, corpus, counts, counts_pre_wl, wl_stats }
    }

    /// Trains a Bootleg model on this workbench's training split. With
    /// `BOOTLEG_CKPT_DIR` set, the run checkpoints atomically every
    /// `BOOTLEG_CKPT_EVERY` steps (default 200) into
    /// `<dir>/<label>` and resumes from the newest valid checkpoint,
    /// so a killed experiment binary picks up where it left off.
    pub fn train_bootleg(&self, config: BootlegConfig, tcfg: &TrainConfig) -> BootlegModel {
        let mut model = BootlegModel::new(&self.kb, &self.corpus.vocab, &self.counts, config);
        if model.config.cooccur_kg {
            let idx = bootleg_core::cooccur::CooccurrenceIndex::build(&self.corpus.train, 2);
            model.set_cooccurrence(idx);
        }
        let checkpoints = checkpoint_config(&format!("{:?}", model.config.variant));
        let outcome = train_resumable(
            &mut model,
            &self.kb,
            &self.corpus.train,
            tcfg,
            checkpoints.as_ref(),
            &FaultPlan::none(),
        )
        .expect("checkpoint I/O");
        if let Some(step) = outcome.report.resumed_from {
            bootleg_obs::info!("bench.train.resumed", step = step);
        }
        // Individual recoveries were already logged (and counted) by the
        // trainer as they happened; summarize here for the bench operator.
        if !outcome.report.recovery_events.is_empty() {
            bootleg_obs::warn!(
                "bench.train.recoveries",
                count = outcome.report.recovery_events.len(),
                skipped_updates = outcome.report.skipped_updates(),
            );
        }
        model
    }

    /// Pairs a model with this workbench's KB as a
    /// [`Predictor`](bootleg_eval::Predictor) usable with both the serial
    /// and the sentence-parallel evaluation drivers.
    pub fn predictor<'a>(&'a self, model: &'a BootlegModel) -> BootlegPredictor<'a> {
        BootlegPredictor::new(model, &self.kb)
    }
}

/// Builds the checkpoint config for one `train_bootleg` call, if
/// `BOOTLEG_CKPT_DIR` is set. Each call in a process gets its own numbered
/// subdirectory (call order is deterministic), so several models trained by
/// one binary never share — or wrongly resume — each other's checkpoints.
fn checkpoint_config(label: &str) -> Option<CheckpointConfig> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static CALLS: AtomicUsize = AtomicUsize::new(0);
    let root = std::env::var("BOOTLEG_CKPT_DIR").ok()?;
    let n = CALLS.fetch_add(1, Ordering::SeqCst);
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    let every = std::env::var("BOOTLEG_CKPT_EVERY").ok().and_then(|s| s.parse().ok()).unwrap_or(200);
    Some(CheckpointConfig {
        dir: std::path::PathBuf::from(root).join(format!("{exe}-{n:02}-{label}")),
        every_steps: every,
        keep_last: 3,
    })
}

fn epochs_override(default: usize) -> usize {
    std::env::var("BOOTLEG_EPOCHS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Default Bootleg training configuration for the full workbench.
pub fn full_train_config() -> TrainConfig {
    TrainConfig { epochs: epochs_override(4), lr: 1.5e-3, batch_size: 16, ..TrainConfig::default() }
}

/// Default training configuration for micro ablations (more epochs on the
/// smaller corpus, as in the paper's 8-epoch micro runs).
pub fn micro_train_config() -> TrainConfig {
    TrainConfig { epochs: epochs_override(6), lr: 1.5e-3, batch_size: 16, ..TrainConfig::default() }
}

/// Prints a table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_workbench_builds() {
        std::env::set_var("BOOTLEG_SCALE", "0.1");
        let wb = Workbench::micro(3);
        std::env::remove_var("BOOTLEG_SCALE");
        assert!(!wb.corpus.train.is_empty());
        assert!(wb.wl_stats.total_weak() > 0);
        assert!(!wb.counts.is_empty());
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
