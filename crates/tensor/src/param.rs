//! Trainable parameter storage, kept outside the autograd tape.
//!
//! Small dense parameters (linear weights, scalars) enter the tape by value;
//! embedding tables enter only through row gathers. Backward accumulates into
//! [`Param::grad`], and for gathers also records touched rows so optimizers
//! can update only those rows (row-sparse "lazy" Adam).

use crate::tensor::Tensor;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One trainable tensor with its accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Human-readable name, used for size accounting and debugging.
    pub name: String,
    /// Current value.
    pub data: Tensor,
    /// Accumulated gradient; same shape as `data`.
    pub grad: Tensor,
    /// Rows touched by sparse (gather) backward since the last `zero_grad`.
    /// Empty for parameters only used densely.
    pub touched_rows: Vec<u32>,
    /// If `true` the whole gradient is dense this step (a dense op consumed
    /// the parameter), so sparse optimizers must fall back to a full update.
    pub dense_touched: bool,
    /// Frozen parameters are skipped by optimizers.
    pub frozen: bool,
}

impl Param {
    fn new(name: String, data: Tensor) -> Self {
        let grad = Tensor::zeros(data.shape());
        Self { name, data, grad, touched_rows: Vec::new(), dense_touched: false, frozen: false }
    }
}

/// Arena of all trainable parameters of a model.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Bumped on every mutable access to parameter values. Caches keyed on
    /// the weights (the inference entity-payload plane) compare this stamp
    /// to detect staleness; spurious bumps (e.g. gradient accumulation) only
    /// cost a conservative rebuild, never a stale read.
    version: u64,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, data: Tensor) -> ParamId {
        self.params.push(Param::new(name.into(), data));
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Immutable access.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access. Bumps the store [`version`](Self::version).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        self.version = self.version.wrapping_add(1);
        &mut self.params[id.0]
    }

    /// Iterates over `(ParamId, &Param)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterates mutably over `(ParamId, &mut Param)`. Bumps the store
    /// [`version`](Self::version).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.version = self.version.wrapping_add(1);
        self.params.iter_mut().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Monotonic stamp of parameter-value mutations: any `get_mut`/`iter_mut`
    /// since construction changes it. Weight-derived caches store the stamp
    /// they were built at and rebuild when it moves.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Clears all gradients and touch-tracking, keeping allocations.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            // Only rewrite rows we actually touched when the grad was sparse;
            // dense grads are cleared wholesale.
            if p.dense_touched {
                p.grad.zero_();
            } else if !p.touched_rows.is_empty() {
                // The same row is gathered once per occurrence (popular
                // entities appear in many mentions), so dedup before zeroing
                // rather than rewriting a row per duplicate. touched_rows is
                // cleared below, so reordering it is unobservable.
                p.touched_rows.sort_unstable();
                p.touched_rows.dedup();
                let cols = p.grad.shape().last().copied().unwrap_or(1);
                let rows_total = p.grad.numel() / cols.max(1);
                for &r in &p.touched_rows {
                    let r = r as usize;
                    if r < rows_total {
                        let start = r * cols;
                        p.grad.data_mut()[start..start + cols].iter_mut().for_each(|x| *x = 0.0);
                    }
                }
            }
            p.touched_rows.clear();
            p.dense_touched = false;
        }
    }

    /// Total number of scalar parameters (optionally only trainable ones).
    pub fn num_scalars(&self, trainable_only: bool) -> usize {
        self.params
            .iter()
            .filter(|p| !trainable_only || !p.frozen)
            .map(|p| p.data.numel())
            .sum()
    }

    /// Size in bytes of all parameter values matching a name predicate
    /// (f32 storage). Used for the Table 10 model-size accounting.
    pub fn bytes_where(&self, mut pred: impl FnMut(&str) -> bool) -> usize {
        self.params.iter().filter(|p| pred(&p.name)).map(|p| p.data.numel() * 4).sum()
    }

    /// Freezes every parameter whose name satisfies the predicate.
    pub fn freeze_where(&mut self, mut pred: impl FnMut(&str) -> bool) {
        for p in &mut self.params {
            if pred(&p.name) {
                p.frozen = true;
            }
        }
    }

    /// Global gradient L2 norm across all trainable parameters.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .filter(|p| !p.frozen)
            .map(|p| p.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every trainable gradient by `c` (used for clipping).
    pub fn scale_grads(&mut self, c: f32) {
        for p in &mut self.params {
            if !p.frozen {
                p.grad.scale_assign(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(&[2, 3]));
        assert_eq!(ps.get(id).data.shape(), &[2, 3]);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn zero_grad_clears_dense() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(&[2, 2]));
        ps.get_mut(id).grad = Tensor::full(&[2, 2], 3.0);
        ps.get_mut(id).dense_touched = true;
        ps.zero_grad();
        assert_eq!(ps.get(id).grad.data(), &[0.0; 4]);
        assert!(!ps.get(id).dense_touched);
    }

    #[test]
    fn zero_grad_clears_touched_rows_only_tracking() {
        let mut ps = ParamStore::new();
        let id = ps.add("emb", Tensor::zeros(&[10, 4]));
        // Simulate a sparse touch of row 3.
        {
            let p = ps.get_mut(id);
            p.grad.data_mut()[12..16].iter_mut().for_each(|x| *x = 1.0);
            p.touched_rows.push(3);
        }
        ps.zero_grad();
        assert!(ps.get(id).grad.data().iter().all(|&x| x == 0.0));
        assert!(ps.get(id).touched_rows.is_empty());
    }

    #[test]
    fn num_scalars_counts() {
        let mut ps = ParamStore::new();
        ps.add("a", Tensor::zeros(&[2, 3]));
        let b = ps.add("b", Tensor::zeros(&[5]));
        assert_eq!(ps.num_scalars(false), 11);
        ps.get_mut(b).frozen = true;
        assert_eq!(ps.num_scalars(true), 6);
    }

    #[test]
    fn bytes_where_filters_by_name() {
        let mut ps = ParamStore::new();
        ps.add("embedding.entity", Tensor::zeros(&[100, 8]));
        ps.add("net.w", Tensor::zeros(&[8, 8]));
        assert_eq!(ps.bytes_where(|n| n.starts_with("embedding")), 100 * 8 * 4);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::zeros(&[2]));
        ps.get_mut(id).grad = Tensor::from_slice(&[3.0, 4.0]);
        assert!((ps.grad_norm() - 5.0).abs() < 1e-6);
        ps.scale_grads(0.5);
        assert_eq!(ps.get(id).grad.data(), &[1.5, 2.0]);
    }
}
