//! Define-by-run reverse-mode autograd tape.
//!
//! Every op appends a [`Node`] whose parents already exist, so node ids form a
//! topological order and [`Graph::backward`] is a single reverse scan. Forward
//! op constructors live in [`crate::ops`] (as `impl` blocks on [`Graph`] and
//! [`Var`]); this module owns the node storage and all backward rules.

use crate::arena;
use crate::kernels;
use crate::param::{ParamId, ParamStore};
use crate::shape::{self, Shape};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Operation recorded on the tape. Parent node ids always precede the node.
#[derive(Debug)]
pub(crate) enum Op {
    /// Constant input; no gradient flows out.
    Leaf,
    /// Small dense parameter copied into the tape by value.
    DenseParam(ParamId),
    /// Row gather from a (possibly huge) embedding table in the store.
    GatherRows { param: ParamId, rows: Vec<u32> },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// `(rows, n) + (n,)` broadcast.
    AddBias { x: usize, bias: usize },
    Scale { x: usize, c: f32 },
    /// `x (n×n) + w·I` with `w` a scalar node.
    AddScaledIdentity { x: usize, w: usize },
    /// `a (…, k) × b (k, n)` with `a`'s leading dims flattened.
    MatMul(usize, usize),
    /// `(B, M, K) × (B, K, N)`.
    BatchMatMul(usize, usize),
    /// Swap the last two axes (rank 2 or 3); materialized.
    TransposeLast2(usize),
    /// Swap axes 0 and 1 of a rank-3 tensor; materialized.
    SwapAxes01(usize),
    /// Same data, new shape.
    Reshape(usize),
    /// Concatenate along the last axis; all inputs share leading dims.
    ConcatLast(Vec<usize>),
    /// Stack along axis 0 (rows); all inputs share the last dim.
    ConcatRows(Vec<usize>),
    /// Gather rows of a rank-2 tensor.
    SelectRows { x: usize, idx: Vec<u32> },
    Relu(usize),
    Gelu(usize),
    Tanh(usize),
    Sigmoid(usize),
    SoftmaxLast(usize),
    LogSoftmaxLast(usize),
    SumAll(usize),
    MeanAll(usize),
    /// Mean over rows: `(m, n) -> (n,)`.
    MeanRows(usize),
    /// Per-segment mean over contiguous row groups: `(Σlens, n) -> (C, n)`.
    MeanRowsSegments { x: usize, lens: Vec<usize> },
    /// Elementwise max of two same-shape tensors.
    Maximum(usize, usize),
    /// Inverted dropout; `mask` holds `0` or `1/(1-p)`.
    Dropout { x: usize, mask: Vec<f32> },
    /// Per-row layer norm over the last dim with affine params.
    LayerNorm { x: usize, gamma: usize, beta: usize, eps: f32 },
    /// Mean cross-entropy of row logits against integer targets (scalar out).
    CrossEntropyRows { logits: usize, targets: Vec<u32> },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub op: Op,
}

pub(crate) struct Inner {
    pub nodes: Vec<Node>,
    pub training: bool,
    pub rng: StdRng,
}

impl Drop for Inner {
    /// Returns every node buffer (values, grads, dropout masks) to the
    /// [`arena`], so the next graph built on this thread — the next sentence
    /// of a train or eval loop — allocates nothing for tensors of shapes
    /// already seen.
    fn drop(&mut self) {
        for node in self.nodes.drain(..) {
            arena::release_tensor(node.value);
            if let Some(g) = node.grad {
                arena::release_tensor(g);
            }
            if let Op::Dropout { mask, .. } = node.op {
                arena::release(mask);
            }
        }
    }
}

/// An autograd tape. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Graph {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

/// Handle to a node on a [`Graph`].
#[derive(Clone)]
pub struct Var {
    pub(crate) graph: Graph,
    pub(crate) id: usize,
}

impl Graph {
    /// New inference-mode graph (dropout disabled).
    pub fn new() -> Self {
        Self::with_mode(false, 0)
    }

    /// New graph; `training` enables dropout/2-D masking, `seed` drives them.
    pub fn with_mode(training: bool, seed: u64) -> Self {
        Graph {
            inner: Rc::new(RefCell::new(Inner {
                nodes: Vec::with_capacity(256),
                training,
                rng: StdRng::seed_from_u64(seed),
            })),
        }
    }

    /// Whether this tape was created in training mode.
    pub fn training(&self) -> bool {
        self.inner.borrow().training
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, value: Tensor, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node { value, grad: None, op });
        Var { graph: self.clone(), id: inner.nodes.len() - 1 }
    }

    /// The value of a node (cloned).
    pub fn value(&self, v: &Var) -> Tensor {
        self.inner.borrow().nodes[v.id].value.clone()
    }

    /// The accumulated gradient of a node after [`Graph::backward`], if any.
    pub fn grad(&self, v: &Var) -> Option<Tensor> {
        self.inner.borrow().nodes[v.id].grad.clone()
    }

    /// Runs reverse-mode accumulation from a scalar `loss` node, writing
    /// parameter gradients into `store`.
    pub fn backward(&self, loss: &Var, store: &mut ParamStore) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.nodes[loss.id].value.numel(),
            1,
            "backward() needs a scalar loss, got shape {:?}",
            inner.nodes[loss.id].value.shape()
        );
        let n = inner.nodes.len();
        inner.nodes[loss.id].grad = Some(Tensor::scalar(1.0));
        for id in (0..n).rev() {
            if id > loss.id {
                continue; // nodes after the loss cannot influence it
            }
            let Some(dy) = inner.nodes[id].grad.take() else { continue };
            backward_node(&mut inner.nodes, id, &dy, store);
            // Keep the grad available for inspection (tests / diagnostics).
            inner.nodes[id].grad = Some(dy);
        }
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Var {
    /// The node's value (cloned).
    pub fn value(&self) -> Tensor {
        self.graph.value(self)
    }

    /// Copies the node's value into `out` without cloning the tensor —
    /// the allocation-free read-out for embedding extraction. Panics if
    /// `out.len()` differs from the node's element count.
    pub fn copy_value_into(&self, out: &mut [f32]) {
        let inner = self.graph.inner.borrow();
        let data = inner.nodes[self.id].value.data();
        assert_eq!(out.len(), data.len(), "copy_value_into: length mismatch");
        out.copy_from_slice(data);
    }

    /// The node's shape, returned by value on the stack — shape queries in
    /// the forward pass don't allocate.
    pub fn shape(&self) -> Shape {
        self.graph.inner.borrow().nodes[self.id].value.dims()
    }

    /// The node's gradient after backward, if populated.
    pub fn grad(&self) -> Option<Tensor> {
        self.graph.grad(self)
    }

    pub(crate) fn same_graph(&self, other: &Var) {
        debug_assert!(
            Rc::ptr_eq(&self.graph.inner, &other.graph.inner),
            "vars belong to different graphs"
        );
    }
}

/// Adds `src` into `nodes[id].grad`, drawing a fresh buffer from the arena
/// if the node has none yet.
fn accum(nodes: &mut [Node], id: usize, src: &Tensor) {
    let node = &mut nodes[id];
    match &mut node.grad {
        Some(g) => g.add_assign(src),
        None => node.grad = Some(arena::clone_tensor(src)),
    }
}

/// Like [`accum`] but consumes `src`: installs it directly as the grad when
/// none exists, otherwise adds and releases its buffer back to the arena.
fn accum_owned(nodes: &mut [Node], id: usize, src: Tensor) {
    let node = &mut nodes[id];
    match &mut node.grad {
        Some(g) => {
            g.add_assign(&src);
            arena::release_tensor(src);
        }
        None => node.grad = Some(src),
    }
}

fn accum_into(nodes: &mut [Node], id: usize, f: impl FnOnce(&mut Tensor)) {
    let node = &mut nodes[id];
    if node.grad.is_none() {
        node.grad = Some(arena::zeros_tensor(&node.value.dims()));
    }
    f(node.grad.as_mut().expect("just set"));
}

/// Dispatches the backward rule of a single node.
///
/// We temporarily take the op out of the node to satisfy the borrow checker
/// (the op owns index vectors we need while mutating sibling nodes).
fn backward_node(nodes: &mut [Node], id: usize, dy: &Tensor, store: &mut ParamStore) {
    let op = std::mem::replace(&mut nodes[id].op, Op::Leaf);
    match &op {
        Op::Leaf => {}
        Op::DenseParam(pid) => {
            let p = store.get_mut(*pid);
            p.grad.add_assign(dy);
            p.dense_touched = true;
        }
        Op::GatherRows { param, rows } => {
            let p = store.get_mut(*param);
            let cols = p.data.shape()[1];
            for (i, &r) in rows.iter().enumerate() {
                let dst = p.grad.row_mut(r as usize);
                let src = &dy.data()[i * cols..(i + 1) * cols];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += *s;
                }
            }
            p.touched_rows.extend_from_slice(rows);
        }
        Op::Add(a, b) => {
            accum(nodes, *a, dy);
            accum(nodes, *b, dy);
        }
        Op::Sub(a, b) => {
            accum(nodes, *a, dy);
            accum_into(nodes, *b, |g| {
                for (gv, &d) in g.data_mut().iter_mut().zip(dy.data()) {
                    *gv -= d;
                }
            });
        }
        Op::Mul(a, b) => {
            let (a, b) = (*a, *b);
            let bv = arena::temp_clone(&nodes[b].value);
            accum_into(nodes, a, |g| {
                for ((gv, &d), &x) in g.data_mut().iter_mut().zip(dy.data()).zip(bv.data()) {
                    *gv += d * x;
                }
            });
            let av = arena::temp_clone(&nodes[a].value);
            accum_into(nodes, b, |g| {
                for ((gv, &d), &x) in g.data_mut().iter_mut().zip(dy.data()).zip(av.data()) {
                    *gv += d * x;
                }
            });
        }
        Op::AddBias { x, bias } => {
            accum(nodes, *x, dy);
            let n = nodes[*bias].value.numel();
            accum_into(nodes, *bias, |g| {
                for (i, &d) in dy.data().iter().enumerate() {
                    g.data_mut()[i % n] += d;
                }
            });
        }
        Op::Scale { x, c } => {
            let c = *c;
            accum_into(nodes, *x, |g| {
                for (gv, &d) in g.data_mut().iter_mut().zip(dy.data()) {
                    *gv += c * d;
                }
            });
        }
        Op::AddScaledIdentity { x, w } => {
            accum(nodes, *x, dy);
            let n = nodes[*x].value.shape()[0];
            let mut tr = 0.0;
            for i in 0..n {
                tr += dy.data()[i * n + i];
            }
            accum(nodes, *w, &Tensor::scalar(tr));
        }
        Op::MatMul(a, b) => {
            let (a, b) = (*a, *b);
            let av = arena::temp_clone(&nodes[a].value);
            let bv = arena::temp_clone(&nodes[b].value);
            let (m, k) = shape::rows_cols(av.shape());
            let n = bv.shape()[1];
            // dA = dY Bᵀ
            accum_into(nodes, a, |g| {
                kernels::matmul_a_bt_acc(dy.data(), bv.data(), g.data_mut(), m, n, k);
            });
            // dB = Aᵀ dY
            accum_into(nodes, b, |g| {
                kernels::matmul_at_b_acc(av.data(), dy.data(), g.data_mut(), m, k, n);
            });
        }
        Op::BatchMatMul(a, b) => {
            let (a, b) = (*a, *b);
            let av = arena::temp_clone(&nodes[a].value);
            let bv = arena::temp_clone(&nodes[b].value);
            let (bb, m, k, n) = shape::batch_matmul_dims(av.shape(), bv.shape());
            accum_into(nodes, a, |g| {
                for t in 0..bb {
                    kernels::matmul_a_bt_acc(
                        &dy.data()[t * m * n..(t + 1) * m * n],
                        &bv.data()[t * k * n..(t + 1) * k * n],
                        &mut g.data_mut()[t * m * k..(t + 1) * m * k],
                        m,
                        n,
                        k,
                    );
                }
            });
            accum_into(nodes, b, |g| {
                for t in 0..bb {
                    kernels::matmul_at_b_acc(
                        &av.data()[t * m * k..(t + 1) * m * k],
                        &dy.data()[t * m * n..(t + 1) * m * n],
                        &mut g.data_mut()[t * k * n..(t + 1) * k * n],
                        m,
                        k,
                        n,
                    );
                }
            });
        }
        Op::TransposeLast2(x) => {
            let xs = nodes[*x].value.dims();
            let dt = transpose_last2_data(dy);
            accum_owned(nodes, *x, Tensor::new(xs, dt));
        }
        Op::SwapAxes01(x) => {
            // dy has shape (b, a, c) where x was (a, b, c); swap back.
            let ys = dy.shape();
            let (b, a, c) = (ys[0], ys[1], ys[2]);
            let mut out = arena::take(a * b * c);
            for i in 0..b {
                for j in 0..a {
                    let src = &dy.data()[(i * a + j) * c..(i * a + j + 1) * c];
                    let dst = &mut out[(j * b + i) * c..(j * b + i + 1) * c];
                    dst.copy_from_slice(src);
                }
            }
            accum_owned(nodes, *x, Tensor::new([a, b, c], out));
        }
        Op::Reshape(x) => {
            let xs = nodes[*x].value.dims();
            let mut buf = arena::take(dy.numel());
            buf.copy_from_slice(dy.data());
            accum_owned(nodes, *x, Tensor::new(xs, buf));
        }
        Op::ConcatLast(parts) => {
            let widths: Vec<usize> =
                parts.iter().map(|&p| nodes[p].value.shape().last().copied().unwrap_or(1)).collect();
            let total: usize = widths.iter().sum();
            let rows = dy.numel() / total;
            let mut off = 0;
            for (pi, &p) in parts.iter().enumerate() {
                let w = widths[pi];
                accum_into(nodes, p, |g| {
                    for r in 0..rows {
                        let src = &dy.data()[r * total + off..r * total + off + w];
                        let dst = &mut g.data_mut()[r * w..(r + 1) * w];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += *s;
                        }
                    }
                });
                off += w;
            }
        }
        Op::ConcatRows(parts) => {
            let mut off = 0;
            for &p in parts {
                let cnt = nodes[p].value.numel();
                accum_into(nodes, p, |g| {
                    for (d, s) in g.data_mut().iter_mut().zip(&dy.data()[off..off + cnt]) {
                        *d += *s;
                    }
                });
                off += cnt;
            }
        }
        Op::SelectRows { x, idx } => {
            let cols = nodes[*x].value.shape()[1];
            accum_into(nodes, *x, |g| {
                for (i, &r) in idx.iter().enumerate() {
                    let dst = &mut g.data_mut()[r as usize * cols..(r as usize + 1) * cols];
                    let src = &dy.data()[i * cols..(i + 1) * cols];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += *s;
                    }
                }
            });
        }
        Op::Relu(x) => {
            let xv = arena::temp_clone(&nodes[*x].value);
            accum_into(nodes, *x, |g| {
                for ((gv, &d), &x0) in g.data_mut().iter_mut().zip(dy.data()).zip(xv.data()) {
                    if x0 > 0.0 {
                        *gv += d;
                    }
                }
            });
        }
        Op::Gelu(x) => {
            let xv = arena::temp_clone(&nodes[*x].value);
            accum_into(nodes, *x, |g| {
                for ((gv, &d), &x0) in g.data_mut().iter_mut().zip(dy.data()).zip(xv.data()) {
                    *gv += d * kernels::gelu_deriv(x0);
                }
            });
        }
        Op::Tanh(x) => {
            let yv = arena::temp_clone(&nodes[id].value);
            accum_into(nodes, *x, |g| {
                for ((gv, &d), &y0) in g.data_mut().iter_mut().zip(dy.data()).zip(yv.data()) {
                    *gv += d * (1.0 - y0 * y0);
                }
            });
        }
        Op::Sigmoid(x) => {
            let yv = arena::temp_clone(&nodes[id].value);
            accum_into(nodes, *x, |g| {
                for ((gv, &d), &y0) in g.data_mut().iter_mut().zip(dy.data()).zip(yv.data()) {
                    *gv += d * y0 * (1.0 - y0);
                }
            });
        }
        Op::SoftmaxLast(x) => {
            let yv = arena::temp_clone(&nodes[id].value);
            let (rows, cols) = shape::rows_cols(yv.shape());
            accum_into(nodes, *x, |g| {
                kernels::softmax_rows_backward(yv.data(), dy.data(), g.data_mut(), rows, cols);
            });
        }
        Op::LogSoftmaxLast(x) => {
            // y = x - lse(x); dx = dy - softmax(x) * sum(dy) per row
            let yv = arena::temp_clone(&nodes[id].value);
            let (rows, cols) = shape::rows_cols(yv.shape());
            accum_into(nodes, *x, |g| {
                for r in 0..rows {
                    let yr = &yv.data()[r * cols..(r + 1) * cols];
                    let dyr = &dy.data()[r * cols..(r + 1) * cols];
                    let sum: f32 = dyr.iter().sum();
                    let gr = &mut g.data_mut()[r * cols..(r + 1) * cols];
                    for ((gv, &d), &y0) in gr.iter_mut().zip(dyr).zip(yr) {
                        *gv += d - y0.exp() * sum;
                    }
                }
            });
        }
        Op::SumAll(x) => {
            let d = dy.item();
            accum_into(nodes, *x, |g| {
                for gv in g.data_mut() {
                    *gv += d;
                }
            });
        }
        Op::MeanAll(x) => {
            let n = nodes[*x].value.numel() as f32;
            let d = dy.item() / n;
            accum_into(nodes, *x, |g| {
                for gv in g.data_mut() {
                    *gv += d;
                }
            });
        }
        Op::MeanRows(x) => {
            let xs = nodes[*x].value.shape().to_vec();
            let (m, n) = (xs[0], xs[1]);
            accum_into(nodes, *x, |g| {
                for r in 0..m {
                    let gr = &mut g.data_mut()[r * n..(r + 1) * n];
                    for (gv, &d) in gr.iter_mut().zip(dy.data()) {
                        *gv += d / m as f32;
                    }
                }
            });
        }
        Op::MeanRowsSegments { x, lens } => {
            let n = nodes[*x].value.shape()[1];
            accum_into(nodes, *x, |g| {
                let mut row = 0;
                for (c, &len) in lens.iter().enumerate() {
                    let dyr = &dy.data()[c * n..(c + 1) * n];
                    for _ in 0..len {
                        let gr = &mut g.data_mut()[row * n..(row + 1) * n];
                        for (gv, &d) in gr.iter_mut().zip(dyr) {
                            *gv += d / len as f32;
                        }
                        row += 1;
                    }
                }
            });
        }
        Op::Maximum(a, b) => {
            let (a, b) = (*a, *b);
            let av = arena::temp_clone(&nodes[a].value);
            let bv = arena::temp_clone(&nodes[b].value);
            accum_into(nodes, a, |g| {
                for (i, gv) in g.data_mut().iter_mut().enumerate() {
                    if av.data()[i] >= bv.data()[i] {
                        *gv += dy.data()[i];
                    }
                }
            });
            accum_into(nodes, b, |g| {
                for (i, gv) in g.data_mut().iter_mut().enumerate() {
                    if av.data()[i] < bv.data()[i] {
                        *gv += dy.data()[i];
                    }
                }
            });
        }
        Op::Dropout { x, mask } => {
            accum_into(nodes, *x, |g| {
                for ((gv, &d), &m) in g.data_mut().iter_mut().zip(dy.data()).zip(mask.iter()) {
                    *gv += d * m;
                }
            });
        }
        Op::LayerNorm { x, gamma, beta, eps } => {
            let xv = arena::temp_clone(&nodes[*x].value);
            let gv = arena::temp_clone(&nodes[*gamma].value);
            let (rows, cols) = shape::rows_cols(xv.shape());
            let cn = cols as f32;
            // dbeta / dgamma accumulate across rows (zeroed); dx is fully
            // written per row.
            let mut dgamma = arena::take_zeroed(cols);
            let mut dbeta = arena::take_zeroed(cols);
            let mut dx_full = arena::take(rows * cols);
            for r in 0..rows {
                let xr = &xv.data()[r * cols..(r + 1) * cols];
                let dyr = &dy.data()[r * cols..(r + 1) * cols];
                let mu: f32 = xr.iter().sum::<f32>() / cn;
                let var: f32 = xr.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cn;
                let inv_std = 1.0 / (var + eps).sqrt();
                // xhat and reductions
                let mut mean_dxhat = 0.0;
                let mut mean_dxhat_xhat = 0.0;
                for j in 0..cols {
                    let xhat = (xr[j] - mu) * inv_std;
                    let dxhat = dyr[j] * gv.data()[j];
                    dgamma[j] += dyr[j] * xhat;
                    dbeta[j] += dyr[j];
                    mean_dxhat += dxhat;
                    mean_dxhat_xhat += dxhat * xhat;
                }
                mean_dxhat /= cn;
                mean_dxhat_xhat /= cn;
                let dxr = &mut dx_full[r * cols..(r + 1) * cols];
                for j in 0..cols {
                    let xhat = (xr[j] - mu) * inv_std;
                    let dxhat = dyr[j] * gv.data()[j];
                    dxr[j] = inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
                }
            }
            let xs = xv.dims();
            accum_owned(nodes, *x, Tensor::new(xs, dx_full));
            accum_owned(nodes, *gamma, Tensor::new([cols], dgamma));
            accum_owned(nodes, *beta, Tensor::new([cols], dbeta));
        }
        Op::CrossEntropyRows { logits, targets } => {
            let lv = arena::temp_clone(&nodes[*logits].value);
            let (rows, cols) = shape::rows_cols(lv.shape());
            let d = dy.item() / rows as f32;
            let mut sm = arena::take(rows * cols);
            kernels::softmax_rows(lv.data(), &mut sm, rows, cols);
            accum_into(nodes, *logits, |g| {
                for r in 0..rows {
                    let gr = &mut g.data_mut()[r * cols..(r + 1) * cols];
                    let sr = &sm[r * cols..(r + 1) * cols];
                    for (gv, &s) in gr.iter_mut().zip(sr) {
                        *gv += d * s;
                    }
                    gr[targets[r] as usize] -= d;
                }
            });
            arena::release(sm);
        }
    }
    nodes[id].op = op;
}

/// Materialized transpose of the last two axes, written through the arena
/// (every element is assigned, so the recycled buffer needs no zeroing). The
/// caller owns the returned buffer and is expected to hand it to
/// [`accum_owned`], which releases it back once accumulated.
fn transpose_last2_data(t: &Tensor) -> Vec<f32> {
    let s = t.shape();
    let (b, m, n) = match s.len() {
        2 => (1, s[0], s[1]),
        3 => (s[0], s[1], s[2]),
        _ => panic!("transpose rank {s:?}"),
    };
    let mut out = arena::take(t.numel());
    for t0 in 0..b {
        for i in 0..m {
            for j in 0..n {
                out[t0 * m * n + j * m + i] = t.data()[t0 * m * n + i * n + j];
            }
        }
    }
    out
}
