//! The unified prediction interface every evaluator consumes.
//!
//! A [`Predictor`] maps an [`Example`] to one candidate index per mention.
//! The trait is `Sync` so the same value can drive both the serial
//! evaluators and the sentence-parallel drivers in [`crate::par`]; a blanket
//! impl keeps plain closures working everywhere a `Predictor` is expected.

use bootleg_baselines::{NedBase, PopularityPrior};
use bootleg_core::{BootlegModel, Example, ForwardOptions};
use bootleg_kb::KnowledgeBase;

/// Anything that disambiguates: one candidate index per mention of `ex`.
///
/// `Sync` is a supertrait so evaluation can fan sentences out across
/// threads; predictors that need interior mutability (e.g. a seeded random
/// baseline) should pre-materialize their predictions into a closure over
/// immutable state instead.
pub trait Predictor: Sync {
    /// Returns the chosen candidate index for each mention of `ex`.
    fn predict(&self, ex: &Example) -> Vec<usize>;

    /// Answers a batch of examples, one prediction set per example in
    /// order. The default loops over [`Predictor::predict`]; predictors
    /// with a real batched engine ([`BootlegPredictor`]) override it to
    /// answer the whole slice in one forward pass. Overrides must be
    /// bit-identical to the sequential default.
    fn predict_batch(&self, exs: &[Example]) -> Vec<Vec<usize>> {
        exs.iter().map(|ex| self.predict(ex)).collect()
    }
}

/// Plain closures (and fns) are predictors.
impl<F: Fn(&Example) -> Vec<usize> + Sync> Predictor for F {
    fn predict(&self, ex: &Example) -> Vec<usize> {
        self(ex)
    }
}

/// A Bootleg model paired with the knowledge base it disambiguates against.
///
/// Runs the inference-only forward pass ([`BootlegModel::infer`]), which
/// skips loss construction and candidate representations.
///
/// **Validated invariant:** `predict` indexes embedding tables with the
/// example's token and candidate ids, so the example must satisfy
/// [`Example::validate`] against this model's limits. Corpus-derived
/// examples always do; externally constructed requests go through the
/// serving layer (`bootleg-serve`), which validates at admission and
/// converts residual panics into typed errors.
#[derive(Clone, Copy, Debug)]
pub struct BootlegPredictor<'a> {
    /// The model.
    pub model: &'a BootlegModel,
    /// Its knowledge base.
    pub kb: &'a KnowledgeBase,
}

impl<'a> BootlegPredictor<'a> {
    /// Pairs a model with its knowledge base. Warms the model's
    /// entity-payload cache (when the policy is `full`) so the first
    /// evaluated sentence doesn't pay the one-time build.
    pub fn new(model: &'a BootlegModel, kb: &'a KnowledgeBase) -> Self {
        model.warm_entity_cache();
        Self { model, kb }
    }

    /// Serves straight from a thawed frozen artifact
    /// ([`bootleg_core::frozen`]). When the artifact carried a prebuilt
    /// entity-payload plane, the warm call inside [`Self::new`] is a no-op —
    /// the bundle is serve-ready as loaded.
    pub fn from_frozen(bundle: &'a bootleg_core::FrozenBundle) -> Self {
        Self::new(&bundle.model, &bundle.kb)
    }
}

impl Predictor for BootlegPredictor<'_> {
    fn predict(&self, ex: &Example) -> Vec<usize> {
        self.model.infer(self.kb, ex).predictions
    }

    /// One ragged micro-batch through [`BootlegModel::run`] — bit-identical
    /// to the sequential default (verified by `batch_parity.rs`), but the
    /// embedding phase runs once for the whole slice instead of per example.
    fn predict_batch(&self, exs: &[Example]) -> Vec<Vec<usize>> {
        self.model
            .run(self.kb, exs, ForwardOptions::inference())
            .expect("unlimited deadline cannot interrupt")
            .into_iter()
            .map(|out| out.predictions)
            .collect()
    }
}

impl Predictor for NedBase {
    fn predict(&self, ex: &Example) -> Vec<usize> {
        self.predict_indices(ex)
    }
}

impl Predictor for PopularityPrior {
    fn predict(&self, ex: &Example) -> Vec<usize> {
        self.predict_indices(ex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_core::ExMention;
    use bootleg_kb::EntityId;

    fn example() -> Example {
        Example::inference(
            vec![0, 1, 2],
            vec![ExMention {
                first: 0,
                last: 0,
                candidates: vec![EntityId(1), EntityId(2)],
                gold: None,
            }],
        )
    }

    #[test]
    fn closures_are_predictors() {
        fn takes(p: impl Predictor, ex: &Example) -> Vec<usize> {
            p.predict(ex)
        }
        let ex = example();
        assert_eq!(takes(|e: &Example| vec![1; e.mentions.len()], &ex), vec![1]);
    }

    #[test]
    fn popularity_prior_is_a_predictor() {
        let ex = example();
        assert_eq!(Predictor::predict(&PopularityPrior, &ex), vec![0]);
    }
}
