//! Quickstart: build a knowledge base and corpus, train Bootleg, and
//! disambiguate a sentence, printing what the model saw and decided.
//!
//! Run: `cargo run --release --example quickstart`

use bootleg::core::{train, BootlegConfig, BootlegModel, Example, TrainConfig};
use bootleg::corpus::{generate_corpus, CorpusConfig};
use bootleg::kb::{generate, KbConfig};

fn main() {
    // A small world: 800 entities with Zipfian popularity, typed and linked.
    let kb = generate(&KbConfig { n_entities: 800, seed: 7, ..Default::default() });
    let corpus = generate_corpus(&kb, &CorpusConfig { n_pages: 250, seed: 7, ..Default::default() });
    println!(
        "knowledge base: {} entities, {} types, {} relations, {} KG edges",
        kb.num_entities(),
        kb.types.len(),
        kb.relations.len(),
        kb.edges.len()
    );
    println!("corpus: {} train / {} dev sentences\n", corpus.train.len(), corpus.dev.len());

    // Train Bootleg for two epochs.
    let counts = bootleg::corpus::stats::entity_counts(&corpus.train, true);
    let mut model = BootlegModel::new(&kb, &corpus.vocab, &counts, BootlegConfig::default());
    let report = train(
        &mut model,
        &kb,
        &corpus.train,
        &TrainConfig { epochs: 2, ..TrainConfig::default() },
    );
    println!("trained on {} examples; epoch losses {:?}\n", report.n_examples, report.epoch_losses);

    // Disambiguate a few dev sentences.
    let mut shown = 0;
    for s in &corpus.dev {
        let Some(ex) = Example::evaluation(s) else { continue };
        let predictions = model.predict(&kb, &ex);
        println!("sentence: \"{}\"", corpus.vocab.decode(&s.tokens));
        for (m, pred) in ex.mentions.iter().zip(&predictions) {
            let gold = m.candidates[m.gold.expect("eval mention") as usize];
            println!(
                "  mention \"{}\" ({} candidates) -> predicted {:?}, gold {:?} [{}]",
                corpus.vocab.word(ex.tokens[m.first]),
                m.candidates.len(),
                kb.entity(*pred).title_tokens,
                kb.entity(gold).title_tokens,
                if *pred == gold { "correct" } else { "wrong" },
            );
        }
        shown += 1;
        if shown >= 5 {
            break;
        }
    }
}
