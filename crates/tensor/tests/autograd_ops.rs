//! Finite-difference gradient checks for every differentiable op on the tape.

use bootleg_tensor::gradcheck::{assert_no_mismatch, check_input_grads, check_param_grads};
use bootleg_tensor::{init, Graph, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 2e-2;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_t(seed: u64, shape: &[usize]) -> Tensor {
    init::normal(&mut rng(seed), shape, 0.7)
}

/// Reduces any var to a "generic" scalar so gradient paths stay nonzero and
/// asymmetric: sum(x * cos(index)).
fn weighted_sum(g: &Graph, v: &Var) -> Var {
    let shape = v.shape();
    let n: usize = shape.iter().product::<usize>().max(1);
    let w: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.7).cos() + 0.1).collect();
    let wv = g.leaf(Tensor::new(shape, w));
    v.mul(&wv).sum_all()
}

#[test]
fn grad_add_sub_mul() {
    let a = rand_t(1, &[3, 4]);
    let b = rand_t(2, &[3, 4]);
    let mm = check_input_grads(&[a, b], |g, vs| {
        let s = vs[0].add(&vs[1]).mul(&vs[0]).sub(&vs[1]);
        weighted_sum(g, &s)
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_add_bias() {
    let x = rand_t(3, &[4, 5]);
    let b = rand_t(4, &[5]);
    let mm = check_input_grads(&[x, b], |g, vs| weighted_sum(g, &vs[0].add_bias(&vs[1])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_scale_and_neg_path() {
    let x = rand_t(5, &[6]);
    let mm = check_input_grads(&[x], |g, vs| weighted_sum(g, &vs[0].scale(-2.5)), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_matmul_2d() {
    let a = rand_t(6, &[3, 4]);
    let b = rand_t(7, &[4, 2]);
    let mm = check_input_grads(&[a, b], |g, vs| weighted_sum(g, &vs[0].matmul(&vs[1])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_matmul_3d_by_2d() {
    let a = rand_t(8, &[2, 3, 4]);
    let b = rand_t(9, &[4, 5]);
    let mm = check_input_grads(&[a, b], |g, vs| weighted_sum(g, &vs[0].matmul(&vs[1])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_batch_matmul() {
    let a = rand_t(10, &[2, 3, 4]);
    let b = rand_t(11, &[2, 4, 5]);
    let mm =
        check_input_grads(&[a, b], |g, vs| weighted_sum(g, &vs[0].batch_matmul(&vs[1])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_transpose_last2() {
    let a = rand_t(12, &[3, 4]);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].transpose_last2()), TOL);
    assert_no_mismatch(&mm);
    let a3 = rand_t(13, &[2, 3, 4]);
    let mm = check_input_grads(&[a3], |g, vs| weighted_sum(g, &vs[0].transpose_last2()), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_swap_axes01() {
    let a = rand_t(14, &[2, 3, 4]);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].swap_axes01()), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_reshape() {
    let a = rand_t(15, &[2, 6]);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].reshape(&[3, 4])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_concat_last() {
    let a = rand_t(16, &[3, 2]);
    let b = rand_t(17, &[3, 4]);
    let mm = check_input_grads(&[a, b], |g, vs| {
        weighted_sum(g, &g.concat_last(&[&vs[0], &vs[1]]))
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_concat_rows() {
    let a = rand_t(18, &[2, 3]);
    let b = rand_t(19, &[4, 3]);
    let mm = check_input_grads(&[a, b], |g, vs| {
        weighted_sum(g, &g.concat_rows(&[&vs[0], &vs[1]]))
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_select_rows_with_duplicates() {
    let a = rand_t(20, &[4, 3]);
    let mm = check_input_grads(&[a], |g, vs| {
        weighted_sum(g, &vs[0].select_rows(&[0, 2, 2, 3]))
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_activations() {
    let a = rand_t(21, &[3, 4]);
    let mm = check_input_grads(std::slice::from_ref(&a), |g, vs| weighted_sum(g, &vs[0].relu()), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(std::slice::from_ref(&a), |g, vs| weighted_sum(g, &vs[0].gelu()), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(std::slice::from_ref(&a), |g, vs| weighted_sum(g, &vs[0].tanh_()), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].sigmoid()), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_softmax_and_log_softmax() {
    let a = rand_t(22, &[3, 5]);
    let mm = check_input_grads(std::slice::from_ref(&a), |g, vs| weighted_sum(g, &vs[0].softmax_last()), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].log_softmax_last()), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_reductions() {
    let a = rand_t(23, &[3, 4]);
    let mm = check_input_grads(std::slice::from_ref(&a), |_, vs| vs[0].sum_all(), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(std::slice::from_ref(&a), |_, vs| vs[0].mean_all(), TOL);
    assert_no_mismatch(&mm);
    let mm = check_input_grads(&[a], |g, vs| weighted_sum(g, &vs[0].mean_rows()), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_maximum_routes_to_argmax_side() {
    // Use well-separated values so fd does not straddle the max kink.
    let a = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.5]);
    let b = Tensor::from_slice(&[0.0, 2.0, -3.0, 0.0]);
    let mm = check_input_grads(&[a, b], |g, vs| weighted_sum(g, &vs[0].maximum(&vs[1])), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_add_scaled_identity() {
    let a = rand_t(24, &[4, 4]);
    let w = Tensor::scalar(0.3);
    let mm = check_input_grads(&[a, w], |g, vs| {
        weighted_sum(g, &vs[0].add_scaled_identity(&vs[1]))
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_layer_norm() {
    let x = rand_t(25, &[3, 6]);
    let gamma = rand_t(26, &[6]);
    let beta = rand_t(27, &[6]);
    let mm = check_input_grads(&[x, gamma, beta], |g, vs| {
        weighted_sum(g, &vs[0].layer_norm(&vs[1], &vs[2], 1e-5))
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_cross_entropy_rows() {
    let x = rand_t(28, &[4, 6]);
    let mm =
        check_input_grads(&[x], |_, vs| vs[0].cross_entropy_rows(&[1, 0, 5, 3]), TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn grad_dense_param_and_gather_rows() {
    let mut store = ParamStore::new();
    let w = store.add("w", rand_t(29, &[3, 2]));
    let emb = store.add("emb", rand_t(30, &[6, 3]));
    let mm = check_param_grads(
        &mut store,
        |g, s| {
            // gather rows (with duplicate) then project with a dense param
            let rows = g.gather_rows(s, emb, &[0, 4, 4, 1]);
            let wv = g.dense_param(s, w);
            let y = rows.matmul(&wv);
            let shape = y.shape();
            let n: usize = shape.iter().product();
            let w2: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.3).sin() + 0.2).collect();
            y.mul(&g.leaf(Tensor::new(shape, w2))).sum_all()
        },
        TOL,
        64,
    );
    assert_no_mismatch(&mm);
    // Touched-row tracking should contain the gathered rows.
    let touched = &store.get(emb).touched_rows;
    assert!(touched.contains(&0) && touched.contains(&4) && touched.contains(&1));
}

#[test]
fn grad_composite_attention_like_path() {
    // A miniature attention block: softmax(QKᵀ/√d)V through several ops.
    let q = rand_t(31, &[2, 3, 4]);
    let k = rand_t(32, &[2, 5, 4]);
    let v = rand_t(33, &[2, 5, 4]);
    let mm = check_input_grads(&[q, k, v], |g, vs| {
        let scores = vs[0].batch_matmul(&vs[1].transpose_last2()).scale(0.5);
        let attn = scores.softmax_last();
        let out = attn.batch_matmul(&vs[2]);
        weighted_sum(g, &out)
    }, TOL);
    assert_no_mismatch(&mm);
}

#[test]
fn dropout_is_identity_in_inference_mode() {
    let g = Graph::new();
    let x = g.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0]));
    let y = x.dropout(0.5);
    assert_eq!(y.value().data(), &[1.0, 2.0, 3.0]);
}

#[test]
fn dropout_scales_kept_elements_in_training() {
    let g = Graph::with_mode(true, 42);
    let x = g.leaf(Tensor::full(&[1000], 1.0));
    let y = x.dropout(0.5).value();
    let kept = y.data().iter().filter(|&&v| v > 0.0).count();
    assert!(kept > 350 && kept < 650, "kept {kept}");
    for &v in y.data() {
        assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
    }
}

#[test]
fn dropout_backward_uses_mask() {
    let mut store = ParamStore::new();
    let g = Graph::with_mode(true, 7);
    let x = g.leaf(Tensor::full(&[64], 1.0));
    let y = x.dropout(0.5);
    let loss = y.sum_all();
    g.backward(&loss, &mut store);
    let gx = x.grad().expect("grad");
    let yv = y.value();
    for (gv, &v) in gx.data().iter().zip(yv.data()) {
        assert_eq!(*gv, v, "grad must equal mask value");
    }
}

#[test]
fn backward_twice_on_shared_subgraph_accumulates() {
    // y = x used by two heads; grads must sum.
    let mut store = ParamStore::new();
    let g = Graph::new();
    let x = g.leaf(Tensor::from_slice(&[1.0, 2.0]));
    let a = x.scale(2.0).sum_all();
    let b = x.scale(3.0).sum_all();
    let loss = a.add(&b);
    g.backward(&loss, &mut store);
    assert_eq!(x.grad().expect("grad").data(), &[5.0, 5.0]);
}
