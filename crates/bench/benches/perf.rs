//! Criterion performance benches: the numeric kernels and end-to-end
//! component throughputs (inference latency, training step, candidate
//! generation, weak labeling, KG adjacency construction).

use bootleg_baselines::{NedBase, NedBaseConfig};
use bootleg_candgen::{extract_mentions, CandidateGenerator};
use bootleg_core::{BootlegConfig, BootlegModel, Example};
use bootleg_corpus::{generate_corpus, weaklabel, CorpusConfig};
use bootleg_kb::{generate as gen_kb, KbConfig};
use bootleg_nn::optim::Adam;
use bootleg_nn::MhaBlock;
use bootleg_tensor::{init, kernels, Graph, ParamStore};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn setup() -> (bootleg_kb::KnowledgeBase, bootleg_corpus::Corpus, BootlegModel, NedBase) {
    let kb = gen_kb(&KbConfig { n_entities: 1_000, seed: 9, ..KbConfig::default() });
    let corpus = generate_corpus(&kb, &CorpusConfig { n_pages: 200, seed: 9, ..CorpusConfig::default() });
    let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
    let model = BootlegModel::new(&kb, &corpus.vocab, &counts, BootlegConfig::default());
    let ned = NedBase::new(&kb, &corpus.vocab, NedBaseConfig::default());
    (kb, corpus, model, ned)
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::normal(&mut rng, &[64, 64], 1.0);
    let b = init::normal(&mut rng, &[64, 64], 1.0);
    let mut out = vec![0.0f32; 64 * 64];
    c.bench_function("kernels/matmul_64", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|x| *x = 0.0);
            kernels::matmul_acc(black_box(a.data()), black_box(b.data()), &mut out, 64, 64, 64);
        })
    });

    let x = init::normal(&mut rng, &[32, 128], 1.0);
    let mut sm = vec![0.0f32; 32 * 128];
    c.bench_function("kernels/softmax_rows_32x128", |bench| {
        bench.iter(|| kernels::softmax_rows(black_box(x.data()), &mut sm, 32, 128))
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let blk = MhaBlock::new(&mut ps, &mut rng, "b", 48, 4, 2, 0.0);
    let x = init::normal(&mut rng, &[24, 48], 1.0);
    c.bench_function("nn/mha_block_forward_24x48", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.leaf(x.clone());
            black_box(blk.forward(&g, &ps, &xv, None).value())
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let (kb, corpus, model, ned) = setup();
    let ex: Example =
        corpus.train.iter().find_map(Example::training).expect("training example");
    c.bench_function("model/bootleg_inference_sentence", |bench| {
        bench.iter(|| black_box(model.forward(&kb, &ex, false, 0).predictions.clone()))
    });
    c.bench_function("model/ned_base_inference_sentence", |bench| {
        bench.iter(|| black_box(ned.predict_indices(&ex)))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let (kb, corpus, mut model, _) = setup();
    let ex: Example =
        corpus.train.iter().find_map(Example::training).expect("training example");
    let mut opt = Adam::new(&model.params, 1e-3);
    let mut seed = 0u64;
    c.bench_function("model/bootleg_train_step", |bench| {
        bench.iter(|| {
            seed += 1;
            let out = model.forward(&kb, &ex, true, seed);
            let loss = out.loss.expect("supervised");
            out.graph.backward(&loss, &mut model.params);
            opt.step(&mut model.params);
            model.params.zero_grad();
        })
    });
}

fn bench_data_pipeline(c: &mut Criterion) {
    let (kb, corpus, _, _) = setup();
    let gamma = CandidateGenerator::from_kb(&kb, 8);
    let sentences: Vec<_> = corpus.train.iter().take(100).collect();
    c.bench_function("candgen/extract_mentions_100_sentences", |bench| {
        bench.iter(|| {
            for s in &sentences {
                black_box(extract_mentions(&s.tokens, &corpus.vocab, &kb, &gamma));
            }
        })
    });

    c.bench_function("corpus/weak_label_1000_sentences", |bench| {
        bench.iter_batched(
            || corpus.train.iter().take(1000).cloned().collect::<Vec<_>>(),
            |mut batch| black_box(weaklabel::apply(&kb, &corpus.vocab, &mut batch)),
            criterion::BatchSize::LargeInput,
        )
    });

    let candidates: Vec<bootleg_kb::EntityId> =
        (0..24u32).map(bootleg_kb::EntityId).collect();
    c.bench_function("kb/adjacency_24_candidates", |bench| {
        bench.iter(|| black_box(kb.adjacency(&candidates)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels, bench_attention, bench_inference, bench_train_step, bench_data_pipeline
}
criterion_main!(benches);
