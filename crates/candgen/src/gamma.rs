//! The candidate map Γ: alias → ranked candidate entities.

use bootleg_corpus::{LabelKind, Sentence};
use bootleg_kb::{AliasId, EntityId, KnowledgeBase};
use std::collections::HashMap;

/// Alias → candidate lookup with top-K truncation.
///
/// Candidates are ranked by corpus anchor-link counts when mined from a
/// corpus (mirroring the paper's Wikipedia anchor mining), falling back to KB
/// popularity order otherwise.
#[derive(Clone, Debug)]
pub struct CandidateGenerator {
    by_alias: Vec<Vec<EntityId>>,
    /// Maximum candidates per alias (the paper's K = 30; we default to the
    /// KB's alias-group cap).
    pub max_candidates: usize,
}

impl CandidateGenerator {
    /// Builds Γ directly from the KB (popularity-ranked).
    pub fn from_kb(kb: &KnowledgeBase, max_candidates: usize) -> Self {
        let by_alias = kb
            .aliases
            .iter()
            .map(|a| a.candidates.iter().copied().take(max_candidates).collect())
            .collect();
        Self { by_alias, max_candidates }
    }

    /// Builds Γ from the KB and re-ranks each alias's candidates by the
    /// number of anchor links observed in `sentences` (ties broken by KB
    /// popularity order, which is the incoming order).
    pub fn mine_from_corpus(
        kb: &KnowledgeBase,
        sentences: &[Sentence],
        max_candidates: usize,
    ) -> Self {
        let mut anchor_counts: HashMap<(AliasId, EntityId), u32> = HashMap::new();
        for s in sentences {
            for m in &s.mentions {
                if m.label == LabelKind::Anchor {
                    if let Some(a) = m.alias {
                        *anchor_counts.entry((a, m.gold)).or_insert(0) += 1;
                    }
                }
            }
        }
        let by_alias = kb
            .aliases
            .iter()
            .map(|a| {
                let mut ranked: Vec<EntityId> = a.candidates.clone();
                // Stable sort: corpus anchor count descending; KB order ties.
                ranked.sort_by_key(|&e| {
                    std::cmp::Reverse(*anchor_counts.get(&(a.id, e)).unwrap_or(&0))
                });
                ranked.truncate(max_candidates);
                ranked
            })
            .collect();
        Self { by_alias, max_candidates }
    }

    /// The ranked candidates of an alias. An alias id outside Γ (possible
    /// only for request-supplied ids on the inference path) yields an empty
    /// slice — indistinguishable from a known alias with no candidates,
    /// which callers already treat as "no mention here".
    pub fn candidates(&self, alias: AliasId) -> &[EntityId] {
        self.by_alias.get(alias.idx()).map_or(&[], Vec::as_slice)
    }

    /// The most likely (top-ranked) candidate — the popularity-prior answer.
    pub fn prior(&self, alias: AliasId) -> Option<EntityId> {
        self.candidates(alias).first().copied()
    }

    /// Number of aliases covered.
    pub fn len(&self) -> usize {
        self.by_alias.len()
    }

    /// `true` if Γ is empty.
    pub fn is_empty(&self) -> bool {
        self.by_alias.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootleg_corpus::{generate_corpus, CorpusConfig};
    use bootleg_kb::{generate as gen_kb, KbConfig};

    fn setup() -> (KnowledgeBase, bootleg_corpus::Corpus) {
        let kb = gen_kb(&KbConfig { n_entities: 500, seed: 19, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 150, seed: 19, ..CorpusConfig::default() });
        (kb, c)
    }

    #[test]
    fn from_kb_preserves_popularity_order() {
        let (kb, _) = setup();
        let g = CandidateGenerator::from_kb(&kb, 8);
        for a in &kb.aliases {
            let cands = g.candidates(a.id);
            assert!(cands.len() <= 8);
            for w in cands.windows(2) {
                assert!(kb.entity(w[0]).popularity >= kb.entity(w[1]).popularity);
            }
        }
    }

    #[test]
    fn truncation_respects_k() {
        let (kb, _) = setup();
        let g = CandidateGenerator::from_kb(&kb, 2);
        for a in &kb.aliases {
            assert!(g.candidates(a.id).len() <= 2);
        }
    }

    #[test]
    fn mined_gamma_ranks_frequent_golds_first() {
        let (kb, c) = setup();
        let g = CandidateGenerator::mine_from_corpus(&kb, &c.train, 8);
        // For each alias, count anchors per candidate and confirm the top
        // candidate has the max count.
        let mut counts: HashMap<(AliasId, EntityId), u32> = HashMap::new();
        for s in &c.train {
            for m in s.mentions.iter().filter(|m| m.label == LabelKind::Anchor) {
                if let Some(a) = m.alias {
                    *counts.entry((a, m.gold)).or_insert(0) += 1;
                }
            }
        }
        for a in &kb.aliases {
            let cands = g.candidates(a.id);
            if cands.len() < 2 {
                continue;
            }
            let top = *counts.get(&(a.id, cands[0])).unwrap_or(&0);
            for &other in &cands[1..] {
                assert!(top >= *counts.get(&(a.id, other)).unwrap_or(&0));
            }
        }
    }

    #[test]
    fn unknown_alias_ids_yield_no_candidates() {
        let (kb, _) = setup();
        let g = CandidateGenerator::from_kb(&kb, 8);
        let bogus = AliasId(u32::MAX);
        assert!(g.candidates(bogus).is_empty());
        assert_eq!(g.prior(bogus), None);
    }

    #[test]
    fn prior_is_top_candidate() {
        let (kb, _) = setup();
        let g = CandidateGenerator::from_kb(&kb, 8);
        for a in &kb.aliases {
            assert_eq!(g.prior(a.id), g.candidates(a.id).first().copied());
        }
    }
}
