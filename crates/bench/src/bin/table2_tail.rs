//! Table 2: All/Torso/Tail/Unseen micro-F1 on the Wikipedia-analog
//! validation set for NED-Base, Bootleg, and the three ablations
//! (Ent-only / Type-only / KG-only).
//!
//! Run: `cargo run --release -p bootleg-bench --bin table2_tail`
//! Scale with `BOOTLEG_SCALE` (default 1.0).

use bootleg_baselines::{train_ned_base, NedBase, NedBaseConfig};
use bootleg_bench::{full_train_config, row, Results, ResultsTable, Workbench};
use bootleg_core::{BootlegConfig, Example, ModelVariant};
use bootleg_eval::par_evaluate;

fn main() -> std::io::Result<()> {
    let t0 = std::time::Instant::now();
    let wb = Workbench::full(2024);
    let eval_set = &wb.corpus.dev;
    eprintln!(
        "[setup {:.1}s] train={} dev={} entities={} heldout={}",
        t0.elapsed().as_secs_f32(),
        wb.corpus.train.len(),
        eval_set.len(),
        wb.kb.num_entities(),
        wb.corpus.heldout.len()
    );

    let widths = [26, 8, 8, 8, 8];
    let headers = ["Model", "All", "Torso", "Tail", "Unseen"];
    let mut table = ResultsTable::new(&headers);
    println!("Table 2: tail disambiguation (micro F1)");
    println!("{}", row(&headers.map(String::from), &widths));

    // NED-Base.
    let t = std::time::Instant::now();
    let mut ned = NedBase::new(&wb.kb, &wb.corpus.vocab, NedBaseConfig::default());
    train_ned_base(&mut ned, &wb.corpus.train, &full_train_config());
    let r = par_evaluate(eval_set, &wb.counts, |ex: &Example| ned.predict_indices(ex));
    let cells = [
        "NED-Base".to_string(),
        format!("{:.1}", r.all.f1()),
        format!("{:.1}", r.torso.f1()),
        format!("{:.1}", r.tail.f1()),
        format!("{:.1}", r.unseen.f1()),
    ];
    table.add(&cells);
    println!("{}   [{:.0}s]", row(&cells, &widths), t.elapsed().as_secs_f32());

    // Bootleg and ablations.
    for variant in [
        ModelVariant::Full,
        ModelVariant::EntOnly,
        ModelVariant::TypeOnly,
        ModelVariant::KgOnly,
    ] {
        let t = std::time::Instant::now();
        let model =
            wb.train_bootleg(BootlegConfig::default().with_variant(variant), &full_train_config());
        let r = par_evaluate(eval_set, &wb.counts, wb.predictor(&model));
        let cells = [
            variant.name().to_string(),
            format!("{:.1}", r.all.f1()),
            format!("{:.1}", r.torso.f1()),
            format!("{:.1}", r.tail.f1()),
            format!("{:.1}", r.unseen.f1()),
        ];
        table.add(&cells);
        println!("{}   [{:.0}s]", row(&cells, &widths), t.elapsed().as_secs_f32());
    }

    // Mention counts row (paper reports them).
    let r = par_evaluate(eval_set, &wb.counts, |ex: &Example| vec![0; ex.mentions.len()]);
    let cells = [
        "# Mentions".to_string(),
        r.all.gold.to_string(),
        r.torso.gold.to_string(),
        r.tail.gold.to_string(),
        r.unseen.gold.to_string(),
    ];
    table.add(&cells);
    println!("{}", row(&cells, &widths));
    eprintln!("[total {:.1}s]", t0.elapsed().as_secs_f32());

    let mut results = Results::new("table2_tail");
    results.set("dev_sentences", eval_set.len());
    results.set_table("rows", table);
    results.write()?;
    Ok(())
}
