//! Property-based tests for candidate generation and mention extraction.

use bootleg_candgen::{extract_mentions, CandidateGenerator};
use bootleg_corpus::{generate_corpus, CorpusConfig};
use bootleg_kb::{generate as gen_kb, KbConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn gamma_invariants(seed in 0u64..300, k in 2usize..10) {
        let kb = gen_kb(&KbConfig { n_entities: 300, seed, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 60, seed: seed ^ 3, ..CorpusConfig::default() });
        let g = CandidateGenerator::mine_from_corpus(&kb, &c.train, k);

        prop_assert_eq!(g.len(), kb.aliases.len());
        for a in &kb.aliases {
            let cands = g.candidates(a.id);
            // Truncation cap respected.
            prop_assert!(cands.len() <= k);
            // Candidates are a subset of the KB's alias candidates.
            for cand in cands {
                prop_assert!(a.candidates.contains(cand));
            }
            // No duplicates.
            let mut sorted: Vec<_> = cands.to_vec();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cands.len());
            // Prior equals the head of the list.
            prop_assert_eq!(g.prior(a.id), cands.first().copied());
        }
    }

    #[test]
    fn extraction_invariants(seed in 0u64..300) {
        let kb = gen_kb(&KbConfig { n_entities: 300, seed, ..KbConfig::default() });
        let c = generate_corpus(&kb, &CorpusConfig { n_pages: 40, seed: seed ^ 5, ..CorpusConfig::default() });
        let g = CandidateGenerator::from_kb(&kb, 8);
        for s in c.train.iter().take(40) {
            let found = extract_mentions(&s.tokens, &c.vocab, &kb, &g);
            // Sorted, non-overlapping, in bounds, and every matched alias
            // really has that surface at that position.
            for w in found.windows(2) {
                prop_assert!(w[0].last < w[1].start);
            }
            for m in &found {
                prop_assert!(m.last < s.tokens.len());
                let surface: Vec<&str> =
                    (m.start..=m.last).map(|i| c.vocab.word(s.tokens[i])).collect();
                prop_assert_eq!(surface.join(" "), kb.alias(m.alias).surface.clone());
            }
        }
    }
}
