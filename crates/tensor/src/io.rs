//! Binary (de)serialization of parameter stores.
//!
//! Format (little-endian): magic `BTLG`, version u32, param count u32, then
//! per parameter: name (u32 length + UTF-8), rank u32, dims (u64 each), and
//! the f32 data. Loading verifies names and shapes against the receiving
//! store, so a model is always reconstructed through its normal constructor
//! and only the *values* are restored — malformed files cannot smuggle in
//! mismatched architectures.

use crate::param::ParamStore;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BTLG";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes all parameter values of `store` to `w`.
pub fn write_store(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.len() as u32)?;
    for (_, p) in store.iter() {
        write_u32(w, p.name.len() as u32)?;
        w.write_all(p.name.as_bytes())?;
        write_u32(w, p.data.rank() as u32)?;
        for &d in p.data.shape() {
            write_u64(w, d as u64)?;
        }
        // f32 LE payload.
        let mut buf = Vec::with_capacity(p.data.numel() * 4);
        for &v in p.data.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Restores parameter *values* into an already-constructed `store`.
/// Fails if the file's parameter names, order, or shapes differ.
pub fn read_into_store(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a bootleg parameter file"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let n = read_u32(r)? as usize;
    if n != store.len() {
        return Err(bad(format!("file has {n} params, store has {}", store.len())));
    }
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        let name_len = read_u32(r)? as usize;
        if name_len > 1 << 16 {
            return Err(bad("implausible name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 name"))?;
        let rank = read_u32(r)? as usize;
        if rank > 8 {
            return Err(bad("implausible rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(r)? as usize);
        }
        {
            let p = store.get(id);
            if p.name != name {
                return Err(bad(format!("param name mismatch: file {name}, store {}", p.name)));
            }
            if p.data.shape() != shape.as_slice() {
                return Err(bad(format!(
                    "shape mismatch for {name}: file {shape:?}, store {:?}",
                    p.data.shape()
                )));
            }
        }
        let numel: usize = shape.iter().product();
        let mut buf = vec![0u8; numel * 4];
        r.read_exact(&mut buf)?;
        let data: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        store.get_mut(id).data = Tensor::new(shape, data);
    }
    Ok(())
}

/// Convenience: save a store to a file path, atomically (temp file +
/// fsync + rename), so a crash mid-save never leaves a truncated file
/// under the final name. Errors carry the file path.
pub fn save_store(store: &ParamStore, path: &std::path::Path) -> io::Result<()> {
    let mut buf = Vec::with_capacity(store.num_scalars(false) * 4 + 64);
    write_store(store, &mut buf).map_err(|e| crate::checkpoint::with_path(e, path))?;
    crate::checkpoint::atomic_write(path, &buf)
}

/// Convenience: load values from a file into a matching store. Errors
/// carry the file path.
pub fn load_store(store: &mut ParamStore, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufReader::new(
        std::fs::File::open(path).map_err(|e| crate::checkpoint::with_path(e, path))?,
    );
    read_into_store(store, &mut f).map_err(|e| crate::checkpoint::with_path(e, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        ps.add("emb", init::normal(&mut rng, &[10, 4], 1.0));
        ps.add("w", init::normal(&mut rng, &[4, 4], 1.0));
        ps.add("scalar", Tensor::scalar(3.5));
        ps
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        write_store(&src, &mut buf).expect("write");
        let mut dst = sample_store(2); // different values, same structure
        read_into_store(&mut dst, &mut buf.as_slice()).expect("read");
        for ((_, a), (_, b)) in src.iter().zip(dst.iter()) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut dst = sample_store(0);
        let err = read_into_store(&mut dst, &mut &b"NOPE"[..]).expect_err("should fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        write_store(&src, &mut buf).expect("write");
        let mut dst = ParamStore::new();
        dst.add("emb", Tensor::zeros(&[10, 4]));
        dst.add("w", Tensor::zeros(&[2, 2])); // wrong shape
        dst.add("scalar", Tensor::scalar(0.0));
        assert!(read_into_store(&mut dst, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_name_mismatch() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        write_store(&src, &mut buf).expect("write");
        let mut dst = ParamStore::new();
        dst.add("emb", Tensor::zeros(&[10, 4]));
        dst.add("other", Tensor::zeros(&[4, 4]));
        dst.add("scalar", Tensor::scalar(0.0));
        assert!(read_into_store(&mut dst, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        write_store(&src, &mut buf).expect("write");
        buf.truncate(buf.len() / 2);
        let mut dst = sample_store(0);
        assert!(read_into_store(&mut dst, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bootleg_io_test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("store.btlg");
        let src = sample_store(5);
        save_store(&src, &path).expect("save");
        let mut dst = sample_store(6);
        load_store(&mut dst, &path).expect("load");
        assert_eq!(src.get(crate::ParamId(0)).data, dst.get(crate::ParamId(0)).data);
        std::fs::remove_file(&path).ok();
    }
}
