//! # bootleg-pool
//!
//! The data-parallel execution layer: a small, dependency-free thread pool
//! with *scoped* fork-join primitives ([`parallel_for`], [`map`],
//! [`parallel_chunks_mut`]). No registry crates — same offline pattern as
//! the in-repo `rand`/`proptest` shims.
//!
//! ## Design
//!
//! A fixed set of worker threads parks on a condvar. A fork-join call
//! publishes one *job* — an erased `Fn(lo, hi)` plus an atomic chunk cursor —
//! wakes the workers, and then **participates itself**: every thread (caller
//! included) repeatedly claims the next unclaimed chunk with a single
//! `fetch_add`, which is work stealing in its simplest deterministic-output
//! form: fast threads automatically absorb the chunks slow threads never
//! reach, with no per-thread deques to rebalance. The call returns when
//! every chunk has run and every worker has left the claim loop, so borrowed
//! captures (`&[f32]` slices, `&Model`) never outlive the call — scoped
//! parallelism without `'static` bounds.
//!
//! ## Determinism
//!
//! Chunks map to *disjoint* output ranges and every chunk computes exactly
//! the bytes the serial loop would compute for those indexes, in the same
//! within-chunk order. Scheduling therefore never changes results: output is
//! bit-identical to serial execution at any thread count.
//!
//! ## Nesting and fallbacks
//!
//! Calls made *from inside* a pool task run serially (a thread-local flag
//! short-circuits them), so `par_evaluate → forward → matmul` cannot
//! deadlock: the outer sentence-level parallelism wins and the inner kernel
//! parallelism degrades to the serial path. A fork-join attempted while the
//! pool is already busy from another thread also runs serially rather than
//! queueing.
//!
//! The global pool size comes from `BOOTLEG_THREADS` (default: available
//! parallelism). [`with_pool`] overrides the pool used by the module-level
//! helpers on the current thread — tests use it to pin exact thread counts.
//!
//! ## Panic safety
//!
//! A panicking task closure cannot wedge the pool: each chunk runs under
//! `catch_unwind`, the remaining chunks still execute, every worker leaves
//! the claim loop, and the *first* panic's original payload is re-raised in
//! the publishing caller (`resume_unwind`, message and type intact) once the
//! job has fully drained. Workers survive to serve the next job, and
//! `pool.panics` counts propagated panics.
//!
//! ## Observability
//!
//! Fork-joins report through `bootleg-obs`: `pool.jobs` /
//! `pool.serial_fallback` count scheduling decisions, `pool.chunks` and
//! `pool.chunks_stolen` count chunk claims (total vs claimed by spawned
//! workers rather than the publishing caller), `pool.worker.{i}.busy_ns` and
//! `pool.caller.busy_ns` break down busy time per thread, and
//! `pool.queue_depth` tracks unclaimed chunks of the in-flight job. All of
//! it is off (a load + branch per update) under `BOOTLEG_METRICS=0`.

use bootleg_obs::{counter, gauge};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

thread_local! {
    /// Set while this thread is executing pool chunks; nested fork-joins
    /// observe it and run serially.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
    /// Per-thread pool override installed by [`with_pool`].
    static POOL_OVERRIDE: Cell<Option<NonNull<ThreadPool>>> = const { Cell::new(None) };
}

/// One published fork-join job: an erased task plus its chunk geometry.
/// The task pointer borrows the caller's stack; the claim protocol (see
/// `run_chunks`) guarantees no dereference can happen after the owning
/// `parallel_for` call returns.
#[derive(Clone, Copy)]
struct JobDesc {
    task: *const (dyn Fn(usize, usize) + Sync),
    n: usize,
    chunk: usize,
    n_chunks: usize,
}

// The raw task pointer is only dereferenced while the owning call is blocked
// waiting for completion, and only by threads registered in `active`.
unsafe impl Send for JobDesc {}

struct State {
    job: Option<JobDesc>,
    /// Bumped once per published job so parked workers can tell new work
    /// from a spurious wakeup.
    epoch: u64,
    /// Workers currently inside the claim loop of the published job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_cv: Condvar,
    done_cv: Condvar,
    /// Next unclaimed chunk index of the current job.
    next: AtomicUsize,
    /// Chunks fully executed so far.
    completed: AtomicUsize,
    /// A chunk panicked; the owning call re-raises after joining.
    panicked: AtomicBool,
    /// Payload of the *first* chunk panic of the current job. The owning
    /// call resumes the unwind with it after all workers quiesce, so the
    /// caller sees the original panic (message and type intact) instead of
    /// a generic wrapper — and never a hang or a silently dropped chunk.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fixed-size pool of worker threads with scoped fork-join calls.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool executing on `threads` threads total (the calling
    /// thread participates, so `threads - 1` workers are spawned).
    /// `threads == 1` (or 0) yields a pool that always runs serially.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, epoch: 0, active: 0, shutdown: false }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bootleg-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers, threads }
    }

    /// Total threads participating in fork-joins (callers + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(lo, hi)` over a partition of `0..n` into chunks of at most
    /// `grain` items, in parallel. Falls back to one serial `f(0, n)` call
    /// when the pool has one thread, the work is a single chunk, the caller
    /// is itself a pool task, or the pool is busy from another thread.
    ///
    /// `f` must treat `lo..hi` as its exclusive slice of the index space;
    /// under that contract results are bit-identical to `f(0, n)`.
    pub fn parallel_for(&self, n: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let n_chunks = n.div_ceil(grain);
        if self.threads <= 1 || n_chunks <= 1 || IN_POOL_TASK.with(Cell::get) {
            counter!("pool.serial_fallback").inc();
            f(0, n);
            return;
        }
        // Erase the closure's lifetime: the completion protocol below keeps
        // the borrow alive for as long as any thread can dereference it.
        let f_ref: &(dyn Fn(usize, usize) + Sync) = &f;
        let task: *const (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(f_ref) };
        let job = JobDesc { task, n, chunk: grain, n_chunks };
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            if st.job.is_some() {
                // Another thread's fork-join owns the workers; don't queue.
                drop(st);
                counter!("pool.serial_fallback").inc();
                f(0, n);
                return;
            }
            counter!("pool.jobs").inc();
            self.shared.next.store(0, Ordering::SeqCst);
            self.shared.completed.store(0, Ordering::SeqCst);
            self.shared.panicked.store(false, Ordering::SeqCst);
            st.job = Some(job);
            st.epoch += 1;
            self.shared.job_cv.notify_all();
        }
        // The caller is a worker too.
        IN_POOL_TASK.with(|c| c.set(true));
        let start = Instant::now();
        run_chunks(&self.shared, &job);
        counter!("pool.caller.busy_ns").add(start.elapsed().as_nanos() as u64);
        IN_POOL_TASK.with(|c| c.set(false));
        // Wait until every chunk ran AND every worker left the claim loop:
        // only then is it safe to invalidate `task` (and return).
        let mut st = self.shared.state.lock().expect("pool lock");
        while self.shared.completed.load(Ordering::SeqCst) < job.n_chunks || st.active > 0 {
            st = self.shared.done_cv.wait(st).expect("pool wait");
        }
        st.job = None;
        drop(st);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            counter!("pool.panics").inc();
            let payload = self
                .shared
                .panic_payload
                .lock()
                .expect("pool panic-payload lock")
                .take();
            match payload {
                // Re-raise the worker's original panic in the caller, as if
                // the caller's own serial loop had panicked.
                Some(p) => std::panic::resume_unwind(p),
                None => panic!("bootleg-pool: a parallel task panicked"),
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    IN_POOL_TASK.with(|c| c.set(true));
    // Resolved once per worker thread; `index` is process-global enough for a
    // per-worker busy-time breakdown (pools are few and long-lived).
    let busy_ns = bootleg_obs::metrics::counter(&format!("pool.worker.{index}.busy_ns"));
    let mut my_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != my_epoch {
                    my_epoch = st.epoch;
                    if let Some(j) = st.job {
                        st.active += 1;
                        break j;
                    }
                    // The job already completed while we were parked;
                    // fall through and keep waiting for the next epoch.
                }
                st = shared.job_cv.wait(st).expect("pool wait");
            }
        };
        let start = Instant::now();
        let ran = run_chunks(shared, &job);
        busy_ns.add(start.elapsed().as_nanos() as u64);
        counter!("pool.chunks_stolen").add(ran as u64);
        let mut st = shared.state.lock().expect("pool lock");
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Claim-and-run loop shared by workers and the publishing caller. A claim
/// only succeeds while unfinished chunks remain, and an unfinished chunk
/// keeps `completed < n_chunks`, which keeps the publisher blocked — so the
/// task borrow is always alive when dereferenced. Returns how many chunks
/// this thread executed (for the steal/busy-time breakdown).
fn run_chunks(shared: &Shared, job: &JobDesc) -> usize {
    let mut ran = 0usize;
    loop {
        let c = shared.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            counter!("pool.chunks").add(ran as u64);
            gauge!("pool.queue_depth").set(0.0);
            return ran;
        }
        gauge!("pool.queue_depth").set(job.n_chunks.saturating_sub(c + 1) as f64);
        let lo = c * job.chunk;
        let hi = (lo + job.chunk).min(job.n);
        let f = unsafe { &*job.task };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(lo, hi))) {
            // Keep the first payload; later panics of the same job are
            // subsumed (the caller can only re-raise one).
            let mut slot = shared.panic_payload.lock().expect("pool panic-payload lock");
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            shared.panicked.store(true, Ordering::SeqCst);
        }
        ran += 1;
        shared.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Raw-pointer wrapper that lets disjoint-index writers share a buffer.
/// Access goes through [`SendPtr::get`] so closures capture the `Sync`
/// wrapper rather than the raw field (2021 disjoint capture).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

impl ThreadPool {
    /// Parallel, order-preserving map over a slice. Each item is computed
    /// exactly as a serial `items.iter().map(f).collect()` would.
    pub fn map<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let out_ptr = SendPtr(out.as_mut_ptr());
        self.parallel_for(items.len(), 1, |lo, hi| {
            for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
                let r = f(item);
                // Disjoint index ranges per chunk: no two writers alias.
                unsafe { *out_ptr.get().add(i) = Some(r) };
            }
        });
        out.into_iter().map(|o| o.expect("chunk filled its range")).collect()
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements and
    /// runs `f(chunk_index, chunk)` on each in parallel. Chunks are
    /// disjoint, so `f` gets a real `&mut` without locking.
    pub fn parallel_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let total = data.len();
        let n_chunks = total.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.parallel_for(n_chunks, 1, |lo, hi| {
            for ci in lo..hi {
                let start = ci * chunk_len;
                let len = chunk_len.min(total - start);
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
                f(ci, chunk);
            }
        });
    }
}

/// Number of threads the global pool uses: `BOOTLEG_THREADS` if set to a
/// positive integer, else the machine's available parallelism.
pub fn num_threads() -> usize {
    match std::env::var("BOOTLEG_THREADS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool, lazily sized by [`num_threads`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(num_threads()))
}

/// Runs `f` with `pool` installed as the pool used by the module-level
/// [`parallel_for`]/[`map`]/[`parallel_chunks_mut`] helpers *on this
/// thread*. Restores the previous override on exit (also on panic).
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    struct Guard(Option<NonNull<ThreadPool>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = POOL_OVERRIDE.with(|c| {
        c.replace(Some(NonNull::from(pool)))
    });
    let _guard = Guard(prev);
    f()
}

/// Dispatches to the thread's override pool if one is installed, else the
/// global pool.
fn current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    match POOL_OVERRIDE.with(Cell::get) {
        // Safety: `with_pool` keeps the override strictly within the
        // borrow's scope and restores it on unwind.
        Some(p) => f(unsafe { p.as_ref() }),
        None => f(global()),
    }
}

/// [`ThreadPool::parallel_for`] on the thread's current pool.
pub fn parallel_for(n: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
    current(|p| p.parallel_for(n, grain, f));
}

/// [`ThreadPool::map`] on the thread's current pool.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    current(|p| p.map(items, f))
}

/// [`ThreadPool::parallel_chunks_mut`] on the thread's current pool.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    current(|p| p.parallel_chunks_mut(data, chunk_len, f));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(1000, 7, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_order_and_values() {
        let pool = ThreadPool::new(8);
        let items: Vec<u64> = (0..503).collect();
        let out = pool.map(&items, |&x| x * x + 1);
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_mut_writes_are_disjoint_and_complete() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u32; 97];
        pool.parallel_chunks_mut(&mut data, 10, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u32;
            }
        });
        let expect: Vec<u32> = (0..97).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(100, 1, |lo, hi| {
            for i in lo..hi {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn nested_calls_fall_back_to_serial_without_deadlock() {
        let pool = ThreadPool::new(4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.parallel_for(8, 1, |lo, hi| {
            for _ in lo..hi {
                outer.fetch_add(1, Ordering::Relaxed);
                // Nested use of the same pool must not deadlock.
                pool.parallel_for(10, 2, |l2, h2| {
                    inner.fetch_add(h2 - l2, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn with_pool_overrides_module_helpers() {
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..50).collect();
        let out = with_pool(&pool, || map(&items, |&x| x + 1));
        assert_eq!(out, (1..51).collect::<Vec<_>>());
        // Override is gone afterwards (global path still works).
        let out2 = map(&items[..4], |&x| x);
        assert_eq!(out2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, 1, |lo, _| {
                if lo == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool stays usable after a panic.
        let out = pool.map(&[1, 2, 3], |&x: &i32| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn panic_payload_reaches_the_caller_intact() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, 1, |lo, _| {
                if lo == 21 {
                    panic!("boom-{}", 21);
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .expect("string payload");
        assert_eq!(msg, "boom-21", "original panic message must survive the pool");
    }

    #[test]
    fn all_other_chunks_still_run_when_one_panics() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..128).map(|_| AtomicUsize::new(0)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(128, 1, |lo, hi| {
                if lo == 64 {
                    panic!("mid-job panic");
                }
                for h in &hits[lo..hi] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        }));
        assert!(result.is_err());
        // Every chunk except the panicking one executed exactly once: the
        // job drains fully before the panic is re-raised (no lost chunks,
        // no hang).
        for (i, h) in hits.iter().enumerate() {
            let expect = usize::from(i != 64);
            assert_eq!(h.load(Ordering::Relaxed), expect, "index {i}");
        }
    }

    #[test]
    fn num_threads_respects_env() {
        std::env::set_var("BOOTLEG_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("BOOTLEG_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("BOOTLEG_THREADS");
        assert!(num_threads() >= 1);
    }

    #[test]
    fn many_rounds_reuse_workers() {
        let pool = ThreadPool::new(4);
        for round in 0..200 {
            let sum = AtomicU64::new(0);
            pool.parallel_for(64, 3, |lo, hi| {
                for i in lo..hi {
                    sum.fetch_add((i + round) as u64, Ordering::Relaxed);
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..64u64).map(|i| i + round as u64).sum());
        }
    }
}
