//! Figure 3: error vs entity-embedding compression ratio. The trained
//! Bootleg model keeps only the top-k% entity embeddings by training
//! popularity (k = 100, 50, 20, 10, 5, 1, 0.1), mapping the rest to one
//! shared unseen-entity vector, and is re-evaluated per slice.
//!
//! Run: `cargo run --release -p bootleg-bench --bin fig3_compression`

use bootleg_bench::{full_train_config, row, Results, ResultsTable, Workbench};
use bootleg_core::{compress_entity_embeddings, BootlegConfig};
use bootleg_eval::{par_evaluate, BootlegPredictor};

fn main() -> std::io::Result<()> {
    let wb = Workbench::full(2024);
    let model = wb.train_bootleg(BootlegConfig::default(), &full_train_config());
    let eval_set = &wb.corpus.dev;

    let widths = [10, 10, 10, 10, 10, 10, 10];
    let headers = ["k%", "kept", "All", "Torso", "Tail", "Unseen", "Emb MB"];
    let mut table = ResultsTable::new(&headers);
    println!("Figure 3: error (100 - F1) vs compression (top-k% embeddings kept)");
    println!("{}", row(&headers.map(String::from), &widths));

    for k in [100.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.1f64] {
        let (compressed, kept) = compress_entity_embeddings(&model, k / 100.0);
        let r = par_evaluate(eval_set, &wb.counts, BootlegPredictor::new(&compressed, &wb.kb));
        // Storage actually needed: kept rows + one shared row.
        let mb = ((kept + 1) * compressed.config.entity_dim * 4) as f64 / 1_048_576.0;
        let cells = [
            format!("{k}"),
            kept.to_string(),
            format!("{:.1}", 100.0 - r.all.f1()),
            format!("{:.1}", 100.0 - r.torso.f1()),
            format!("{:.1}", 100.0 - r.tail.f1()),
            format!("{:.1}", 100.0 - r.unseen.f1()),
            format!("{mb:.3}"),
        ];
        table.add(&cells);
        println!("{}", row(&cells, &widths));
    }
    println!("\n(paper: top 5% keeps overall F1 within 0.8 points and *gains* ~2 F1 on the tail)");

    let mut results = Results::new("fig3_compression");
    results.set_table("curve", table);
    results.write()?;
    Ok(())
}
