//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! `ProptestConfig::cases` iterations with inputs drawn from a generator
//! seeded by the test's name, so failures reproduce exactly across runs and
//! machines.

pub use rand as __rand;
use rand::rngs::StdRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test seed: FNV-1a of the test name.
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines deterministic sampling-based property tests.
///
/// Supported grammar (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::test_seed(stringify!($name)),
                );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __run = || -> () { $body };
                __run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = collection::vec(-1.0f32..1.0, 3..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
        let fixed = collection::vec(0u32..5, 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_plain_and_tuple_patterns(
            x in 0u32..50,
            (a, b) in (0usize..4, 10usize..20),
        ) {
            prop_assert!(x < 50);
            prop_assert!(a < 4 && (10..20).contains(&b));
            prop_assert_eq!(a + b - b, a);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config_header(x in -1.0f64..1.0) {
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn same_test_name_reproduces_inputs() {
        let mut a = StdRng::seed_from_u64(crate::test_seed("foo"));
        let mut b = StdRng::seed_from_u64(crate::test_seed("foo"));
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
