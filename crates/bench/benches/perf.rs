//! Performance benches: the numeric kernels and end-to-end component
//! throughputs (inference latency, training step, candidate generation,
//! weak labeling, KG adjacency construction).
//!
//! Self-contained harness (no crates.io access for Criterion in this build
//! environment): warm-up, timed batches, median-of-batches reporting.
//! Run with `cargo bench -p bootleg-bench`; under `cargo test` the binary
//! exits immediately because Cargo only passes `--bench` for real bench runs.

use bootleg_baselines::{NedBase, NedBaseConfig};
use bootleg_candgen::{extract_mentions, CandidateGenerator};
use bootleg_core::{BootlegConfig, BootlegModel, Example};
use bootleg_corpus::{generate_corpus, weaklabel, CorpusConfig};
use bootleg_kb::{generate as gen_kb, KbConfig};
use bootleg_nn::optim::Adam;
use bootleg_nn::MhaBlock;
use bootleg_tensor::{init, kernels, Graph, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WARM_UP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Runs `f` repeatedly: warm-up for `WARM_UP`, then timed batches for
/// `MEASURE`, printing the median per-iteration latency.
fn bench_function(name: &str, mut f: impl FnMut()) {
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARM_UP {
        f();
        warm_iters += 1;
    }
    // Size batches so each lasts roughly MEASURE/10.
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let batch = ((MEASURE.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);

    let mut samples: Vec<f64> = Vec::new();
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<44} {:>12}  [{} .. {}]  ({} samples x {batch} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn setup() -> (bootleg_kb::KnowledgeBase, bootleg_corpus::Corpus, BootlegModel, NedBase) {
    let kb = gen_kb(&KbConfig { n_entities: 1_000, seed: 9, ..KbConfig::default() });
    let corpus = generate_corpus(&kb, &CorpusConfig { n_pages: 200, seed: 9, ..CorpusConfig::default() });
    let counts = bootleg_corpus::stats::entity_counts(&corpus.train, true);
    let model = BootlegModel::new(&kb, &corpus.vocab, &counts, BootlegConfig::default());
    let ned = NedBase::new(&kb, &corpus.vocab, NedBaseConfig::default());
    (kb, corpus, model, ned)
}

fn bench_kernels() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::normal(&mut rng, &[64, 64], 1.0);
    let b = init::normal(&mut rng, &[64, 64], 1.0);
    let mut out = vec![0.0f32; 64 * 64];
    bench_function("kernels/matmul_64", || {
        out.iter_mut().for_each(|x| *x = 0.0);
        kernels::matmul_acc(black_box(a.data()), black_box(b.data()), &mut out, 64, 64, 64);
    });

    let x = init::normal(&mut rng, &[32, 128], 1.0);
    let mut sm = vec![0.0f32; 32 * 128];
    bench_function("kernels/softmax_rows_32x128", || {
        kernels::softmax_rows(black_box(x.data()), &mut sm, 32, 128)
    });
}

fn bench_attention() {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let blk = MhaBlock::new(&mut ps, &mut rng, "b", 48, 4, 2, 0.0);
    let x = init::normal(&mut rng, &[24, 48], 1.0);
    bench_function("nn/mha_block_forward_24x48", || {
        let g = Graph::new();
        let xv = g.leaf(x.clone());
        black_box(blk.forward(&g, &ps, &xv, None).value());
    });
}

fn bench_inference() {
    let (kb, corpus, model, ned) = setup();
    let ex: Example =
        corpus.train.iter().find_map(Example::training).expect("training example");
    bench_function("model/bootleg_inference_sentence", || {
        black_box(model.forward(&kb, &ex, false, 0).predictions.clone());
    });
    bench_function("model/ned_base_inference_sentence", || {
        black_box(ned.predict_indices(&ex));
    });
}

fn bench_train_step() {
    let (kb, corpus, mut model, _) = setup();
    let ex: Example =
        corpus.train.iter().find_map(Example::training).expect("training example");
    let mut opt = Adam::new(&model.params, 1e-3);
    let mut seed = 0u64;
    bench_function("model/bootleg_train_step", || {
        seed += 1;
        let out = model.forward(&kb, &ex, true, seed);
        let loss = out.loss.expect("supervised");
        out.graph.backward(&loss, &mut model.params);
        opt.step(&mut model.params);
        model.params.zero_grad();
    });
}

fn bench_data_pipeline() {
    let (kb, corpus, _, _) = setup();
    let gamma = CandidateGenerator::from_kb(&kb, 8);
    let sentences: Vec<_> = corpus.train.iter().take(100).collect();
    bench_function("candgen/extract_mentions_100_sentences", || {
        for s in &sentences {
            black_box(extract_mentions(&s.tokens, &corpus.vocab, &kb, &gamma));
        }
    });

    bench_function("corpus/weak_label_1000_sentences", || {
        let mut batch = corpus.train.iter().take(1000).cloned().collect::<Vec<_>>();
        black_box(weaklabel::apply(&kb, &corpus.vocab, &mut batch));
    });

    let candidates: Vec<bootleg_kb::EntityId> = (0..24u32).map(bootleg_kb::EntityId).collect();
    bench_function("kb/adjacency_24_candidates", || {
        black_box(kb.adjacency(&candidates));
    });
}

fn main() {
    // `cargo bench` passes --bench; `cargo test` runs bench targets bare.
    // Skip instantly in the latter case so the test suite stays fast.
    if !std::env::args().any(|a| a == "--bench") {
        println!("perf: skipped (run via `cargo bench` to measure)");
        return;
    }
    bench_kernels();
    bench_attention();
    bench_inference();
    bench_train_step();
    bench_data_pipeline();
}
