//! Parameter initialization distributions.
//!
//! `rand` is the only dependency; the normal sampler is a Box–Muller
//! implementation so we avoid pulling in `rand_distr`.

use crate::tensor::Tensor;
use rand::Rng;
use std::cell::Cell;

thread_local! {
    static SKIP: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard from [`skip_init`]; restores the previous mode on drop.
pub struct SkipInitGuard {
    prev: bool,
}

impl Drop for SkipInitGuard {
    fn drop(&mut self) {
        SKIP.with(|s| s.set(self.prev));
    }
}

/// While the returned guard lives (on this thread), every sampler in this
/// module returns zero tensors without drawing from the RNG. Bulk
/// weight-restore paths (frozen-artifact thaw) construct the model only
/// for its architecture and immediately overwrite every parameter;
/// sampling ~10⁶ Box–Muller draws to discard them would dominate an
/// otherwise memcpy-bound cold start. Callers MUST overwrite all
/// parameters before using the model — restore layers enforce this by
/// checking full manifest coverage.
pub fn skip_init() -> SkipInitGuard {
    SKIP.with(|s| SkipInitGuard { prev: s.replace(true) })
}

fn skipping() -> bool {
    SKIP.with(|s| s.get())
}

/// Samples one standard-normal value via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor with i.i.d. N(0, std²) entries.
pub fn normal<R: Rng>(rng: &mut R, shape: &[usize], std: f32) -> Tensor {
    if skipping() {
        return Tensor::zeros(shape);
    }
    let n = crate::shape::numel(shape);
    let data = (0..n).map(|_| standard_normal(rng) * std).collect();
    Tensor::new(shape.to_vec(), data)
}

/// Xavier/Glorot uniform init for a `fan_in × fan_out` weight matrix.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    if skipping() {
        return Tensor::zeros(&[fan_in, fan_out]);
    }
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::new(vec![fan_in, fan_out], data)
}

/// Uniform init in `[-limit, limit]`.
pub fn uniform<R: Rng>(rng: &mut R, shape: &[usize], limit: f32) -> Tensor {
    if skipping() {
        return Tensor::zeros(shape);
    }
    let n = crate::shape::numel(shape);
    let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::new(shape.to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&mut rng, &[10_000], 2.0);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, 64, 64);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        assert_eq!(t.shape(), &[64, 64]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = normal(&mut StdRng::seed_from_u64(3), &[16], 1.0);
        let b = normal(&mut StdRng::seed_from_u64(3), &[16], 1.0);
        assert_eq!(a, b);
    }
}
