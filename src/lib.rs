//! # bootleg
//!
//! A from-scratch Rust reproduction of **Bootleg: Chasing the Tail with
//! Self-Supervised Named Entity Disambiguation** (Orr et al., CIDR 2021).
//!
//! This facade crate re-exports the full system; see the individual crates
//! for details:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd (the numeric substrate).
//! * [`nn`] — layers (MHA, additive attention, layer norm), Adam, the word
//!   encoder standing in for BERT.
//! * [`kb`] — the Wikidata/YAGO-style knowledge base and its synthetic
//!   generator with controlled tail statistics.
//! * [`corpus`] — the Wikipedia-analog corpus built from the paper's four
//!   reasoning-pattern templates, weak labeling, and benchmark sets.
//! * [`candgen`] — candidate maps Γ and mention extraction.
//! * [`core`] — the Bootleg model itself: signal encoding, Phrase2Ent /
//!   Ent2Ent / KG2Ent, 2-D regularization, training, inference, compression.
//! * [`baselines`] — NED-Base (Févry et al. analog) and the priors.
//! * [`eval`] — micro-F1, popularity slices, pattern slices, error buckets.
//! * [`downstream`] — TACRED-analog relation extraction and the
//!   Overton-style industry task.
//! * [`obs`] — metrics, RAII tracing spans, and structured logging
//!   (`BOOTLEG_LOG` / `BOOTLEG_TRACE` / `BOOTLEG_METRICS_PATH`).
//! * [`serve`] — resilient request serving: admission control, deadlines,
//!   load shedding, panic isolation, and a breaker-guarded fallback chain
//!   (Bootleg → NED-Base → popularity prior).
//!
//! ## Quickstart
//!
//! ```
//! use bootleg::kb::{generate, KbConfig};
//! use bootleg::corpus::{generate_corpus, CorpusConfig};
//! use bootleg::core::{BootlegModel, BootlegConfig, TrainConfig, Example, train};
//!
//! // 1. A knowledge base and a self-supervised corpus.
//! let kb = generate(&KbConfig { n_entities: 300, seed: 1, ..Default::default() });
//! let corpus = generate_corpus(&kb, &CorpusConfig { n_pages: 40, seed: 1, ..Default::default() });
//!
//! // 2. A Bootleg model over it.
//! let counts = bootleg::corpus::stats::entity_counts(&corpus.train, true);
//! let mut model = BootlegModel::new(&kb, &corpus.vocab, &counts, BootlegConfig::default());
//!
//! // 3. Train briefly and disambiguate.
//! train(&mut model, &kb, &corpus.train[..20], &TrainConfig { epochs: 1, ..Default::default() });
//! let example = corpus.dev.iter().find_map(Example::evaluation).expect("an evaluable sentence");
//! let entities = model.predict(&kb, &example);
//! assert_eq!(entities.len(), example.mentions.len());
//! ```

pub use bootleg_baselines as baselines;
pub use bootleg_candgen as candgen;
pub use bootleg_core as core;
pub use bootleg_corpus as corpus;
pub use bootleg_downstream as downstream;
pub use bootleg_eval as eval;
pub use bootleg_kb as kb;
pub use bootleg_nn as nn;
pub use bootleg_obs as obs;
pub use bootleg_serve as serve;
pub use bootleg_tensor as tensor;
